// Tests of the discrete-event simulator: delivery semantics, bandwidth
// and latency arithmetic, FIFO links, CPU serialization, statistics and
// reset behaviour.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "skypeer/sim/simulator.h"

namespace skypeer::sim {
namespace {

struct Ping : MessageBody {
  explicit Ping(int hops_left = 0) : hops_left(hops_left) {}
  int hops_left;
};

/// Records every delivery; optionally charges CPU and forwards.
class Recorder : public Node {
 public:
  struct Delivery {
    double arrival;     // Event time.
    double start;       // When processing actually began.
    int src;
    size_t bytes;
  };

  explicit Recorder(double cpu_per_message = 0.0)
      : cpu_per_message_(cpu_per_message) {}

  void HandleMessage(Simulator* simulator, const Message& message) override {
    deliveries_.push_back(Delivery{simulator->now(),
                                   simulator->CurrentNodeClock(), message.src,
                                   message.bytes});
    if (cpu_per_message_ > 0.0) {
      simulator->ChargeCpu(cpu_per_message_);
    }
    const auto* ping = dynamic_cast<const Ping*>(message.body.get());
    if (ping != nullptr && ping->hops_left > 0 && forward_to_ >= 0) {
      simulator->Send(self_, forward_to_, forward_bytes_,
                      std::make_shared<Ping>(ping->hops_left - 1));
    }
  }

  void ConfigureForward(int self, int to, size_t bytes) {
    self_ = self;
    forward_to_ = to;
    forward_bytes_ = bytes;
  }

  const std::vector<Delivery>& deliveries() const { return deliveries_; }

 private:
  double cpu_per_message_;
  int self_ = -1;
  int forward_to_ = -1;
  size_t forward_bytes_ = 0;
  std::vector<Delivery> deliveries_;
};

TEST(Simulator, PostDeliversImmediately) {
  Simulator sim;
  Recorder node;
  const int id = sim.AddNode(&node);
  sim.Post(id, std::make_shared<Ping>());
  sim.Run();
  ASSERT_EQ(node.deliveries().size(), 1u);
  EXPECT_EQ(node.deliveries()[0].arrival, 0.0);
  EXPECT_EQ(node.deliveries()[0].src, -1);
}

TEST(Simulator, TransferTimeIsBytesOverBandwidth) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{1024.0, 0.0});
  a.ConfigureForward(ia, ib, 4096);  // 4 KB over 1 KB/s -> 4 s.
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 1u);
  EXPECT_DOUBLE_EQ(b.deliveries()[0].arrival, 4.0);
}

TEST(Simulator, LatencyAddsOnTop) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{1024.0, 0.5});
  a.ConfigureForward(ia, ib, 1024);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 1u);
  EXPECT_DOUBLE_EQ(b.deliveries()[0].arrival, 1.5);
}

TEST(Simulator, InfiniteBandwidthMeansZeroTransfer) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{kInfiniteBandwidth, 0.0});
  a.ConfigureForward(ia, ib, 1 << 30);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 1u);
  EXPECT_DOUBLE_EQ(b.deliveries()[0].arrival, 0.0);
}

TEST(Simulator, LinkIsFifoAndSerializesTransfers) {
  // Two messages sent back-to-back share the link: the second waits.
  Simulator sim;
  Recorder b;

  class DoubleSender : public Node {
   public:
    void HandleMessage(Simulator* simulator, const Message&) override {
      simulator->Send(0, 1, 1024, std::make_shared<Ping>());
      simulator->Send(0, 1, 1024, std::make_shared<Ping>());
    }
  } a;

  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  ASSERT_EQ(ia, 0);
  ASSERT_EQ(ib, 1);
  sim.Connect(0, 1, LinkParams{1024.0, 0.0});
  sim.Post(0, std::make_shared<Ping>());
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 2u);
  EXPECT_DOUBLE_EQ(b.deliveries()[0].arrival, 1.0);
  EXPECT_DOUBLE_EQ(b.deliveries()[1].arrival, 2.0);
}

TEST(Simulator, OppositeDirectionsDoNotShareCapacity) {
  // a->b and b->a are independent channels.
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{1024.0, 0.0});
  a.ConfigureForward(ia, ib, 1024);
  b.ConfigureForward(ib, ia, 1024);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Post(ib, std::make_shared<Ping>(1));
  sim.Run();
  ASSERT_EQ(a.deliveries().size(), 2u);  // Post + reply... both directions.
  ASSERT_EQ(b.deliveries().size(), 2u);
  EXPECT_DOUBLE_EQ(b.deliveries()[1].arrival, 1.0);
  EXPECT_DOUBLE_EQ(a.deliveries()[1].arrival, 1.0);
}

TEST(Simulator, CpuChargesSerializeProcessing) {
  // Node b takes 2 s per message; two messages arriving at ~0 finish at
  // 2 and 4.
  Simulator sim;
  Recorder a;
  Recorder b(/*cpu_per_message=*/2.0);
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{kInfiniteBandwidth, 0.0});

  class TwoPings : public Node {
   public:
    void HandleMessage(Simulator* simulator, const Message&) override {
      simulator->Send(0, 1, 1, std::make_shared<Ping>());
      simulator->Send(0, 1, 1, std::make_shared<Ping>());
    }
  };
  // Replace a's behavior by sending via a helper node is overkill; reuse
  // forward with 0 hops by posting two external messages instead:
  (void)a;
  sim.Post(ib, std::make_shared<Ping>());
  sim.Post(ib, std::make_shared<Ping>());
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 2u);
  EXPECT_DOUBLE_EQ(b.deliveries()[0].start, 0.0);
  // Second message arrived at t=0 but processing began once the first
  // finished.
  EXPECT_DOUBLE_EQ(b.deliveries()[1].start, 2.0);
  EXPECT_DOUBLE_EQ(sim.NodeClock(ib), 4.0);
}

TEST(Simulator, SendDepartsAfterCpuCharge) {
  // A node that charges CPU then forwards: the message departs at its
  // advanced clock, not the arrival time.
  Simulator sim;
  Recorder a(/*cpu_per_message=*/3.0);
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{kInfiniteBandwidth, 0.0});
  a.ConfigureForward(ia, ib, 8);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 1u);
  // ChargeCpu happens before the forward in Recorder::HandleMessage.
  EXPECT_DOUBLE_EQ(b.deliveries()[0].arrival, 3.0);
}

TEST(Simulator, MultiHopChainAccumulatesDelay) {
  Simulator sim;
  Recorder n0;
  Recorder n1;
  Recorder n2;
  const int i0 = sim.AddNode(&n0);
  const int i1 = sim.AddNode(&n1);
  const int i2 = sim.AddNode(&n2);
  sim.Connect(i0, i1, LinkParams{1024.0, 0.0});
  sim.Connect(i1, i2, LinkParams{512.0, 0.0});
  n0.ConfigureForward(i0, i1, 1024);  // 1 s.
  n1.ConfigureForward(i1, i2, 1024);  // 2 s.
  sim.Post(i0, std::make_shared<Ping>(2));
  sim.Run();
  ASSERT_EQ(n2.deliveries().size(), 1u);
  EXPECT_DOUBLE_EQ(n2.deliveries()[0].arrival, 3.0);
}

TEST(Simulator, StatisticsCountBytesAndMessages) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib);
  a.ConfigureForward(ia, ib, 100);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  EXPECT_EQ(sim.total_bytes(), 100u);
  EXPECT_EQ(sim.num_messages(), 1u);  // Post is free; Send counts.
}

TEST(Simulator, ResetClearsStateButKeepsTopology) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{1024.0, 0.0});
  a.ConfigureForward(ia, ib, 2048);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  EXPECT_GT(sim.total_bytes(), 0u);
  EXPECT_GT(sim.MaxClock(), 0.0);

  sim.Reset();
  EXPECT_EQ(sim.total_bytes(), 0u);
  EXPECT_EQ(sim.num_messages(), 0u);
  EXPECT_DOUBLE_EQ(sim.MaxClock(), 0.0);
  EXPECT_TRUE(sim.AreConnected(ia, ib));

  // Link backlog cleared: a fresh send sees a free link.
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 2u);
  EXPECT_DOUBLE_EQ(b.deliveries()[1].arrival, 2.0);
}

TEST(Simulator, SetAllLinkParamsApplies) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{1024.0, 0.0});
  sim.SetAllLinkParams(LinkParams{kInfiniteBandwidth, 0.0});
  a.ConfigureForward(ia, ib, 1 << 20);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 1u);
  EXPECT_DOUBLE_EQ(b.deliveries()[0].arrival, 0.0);
}

TEST(Simulator, EqualTimestampsProcessedInSendOrder) {
  Simulator sim;
  Recorder b;
  const int ib_expected = 0;
  const int ib = sim.AddNode(&b);
  ASSERT_EQ(ib, ib_expected);
  // Three posts at t=0 must arrive in post order.
  sim.Post(ib, std::make_shared<Ping>(10));
  sim.Post(ib, std::make_shared<Ping>(20));
  sim.Post(ib, std::make_shared<Ping>(30));
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 3u);
  // All at time zero; order verified via the shared body pointer not
  // being exposed — instead rely on deterministic arrival ordering by
  // construction: all arrivals at 0.0.
  EXPECT_DOUBLE_EQ(b.deliveries()[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(b.deliveries()[2].arrival, 0.0);
}

// --- timers -------------------------------------------------------------

TEST(Simulator, TimersFireAtScheduledDelaysInOrder) {
  Simulator sim;
  Recorder node;
  const int id = sim.AddNode(&node);
  sim.ScheduleTimer(id, 0.5, std::make_shared<Ping>());
  sim.ScheduleTimer(id, 0.2, std::make_shared<Ping>());
  sim.Run();
  ASSERT_EQ(node.deliveries().size(), 2u);
  EXPECT_DOUBLE_EQ(node.deliveries()[0].arrival, 0.2);
  EXPECT_DOUBLE_EQ(node.deliveries()[1].arrival, 0.5);
}

TEST(Simulator, CancelledTimerNeverFires) {
  Simulator sim;
  Recorder node;
  const int id = sim.AddNode(&node);
  const uint64_t keep = sim.ScheduleTimer(id, 0.1, std::make_shared<Ping>());
  const uint64_t cancel = sim.ScheduleTimer(id, 0.2, std::make_shared<Ping>());
  (void)keep;
  sim.CancelTimer(cancel);
  sim.CancelTimer(987654u);  // Unknown handles are a no-op.
  sim.Run();
  ASSERT_EQ(node.deliveries().size(), 1u);
  EXPECT_DOUBLE_EQ(node.deliveries()[0].arrival, 0.1);
}

// --- run budgets --------------------------------------------------------

TEST(Simulator, EventBudgetStopsAndResumesWithoutLoss) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{kInfiniteBandwidth, 0.0});
  a.ConfigureForward(ia, ib, 64);
  b.ConfigureForward(ib, ia, 64);
  sim.Post(ia, std::make_shared<Ping>(40));  // 41 deliveries in total.

  RunBudget budget;
  budget.max_events = 10;
  EXPECT_EQ(sim.Run(budget), RunStatus::kEventBudgetExceeded);
  const size_t after_budget = a.deliveries().size() + b.deliveries().size();
  EXPECT_EQ(after_budget, 10u);
  // Resumes where it stopped.
  EXPECT_EQ(sim.Run(RunBudget{}), RunStatus::kCompleted);
  EXPECT_EQ(a.deliveries().size() + b.deliveries().size(), 41u);
}

TEST(Simulator, TimeBudgetStopsBeforeEventsBeyondHorizon) {
  Simulator sim;
  Recorder node;
  const int id = sim.AddNode(&node);
  sim.ScheduleTimer(id, 1.0, std::make_shared<Ping>());
  sim.ScheduleTimer(id, 5.0, std::make_shared<Ping>());
  RunBudget budget;
  budget.max_virtual_time = 2.0;
  EXPECT_EQ(sim.Run(budget), RunStatus::kTimeBudgetExceeded);
  EXPECT_EQ(node.deliveries().size(), 1u);
  EXPECT_EQ(sim.Run(RunBudget{}), RunStatus::kCompleted);
  EXPECT_EQ(node.deliveries().size(), 2u);
}

// --- fault injection ----------------------------------------------------

TEST(Simulator, DropProbabilityIsSeedDeterministic) {
  const auto run = [](uint64_t seed) {
    Simulator sim;
    Recorder a;
    Recorder b;
    const int ia = sim.AddNode(&a);
    const int ib = sim.AddNode(&b);
    sim.Connect(ia, ib, LinkParams{kInfiniteBandwidth, 0.0});
    FaultPlan plan;
    plan.seed = seed;
    plan.drop_prob = 0.5;
    sim.SetFaultPlan(plan);
    a.ConfigureForward(ia, ib, 64);
    b.ConfigureForward(ib, ia, 64);
    sim.Post(ia, std::make_shared<Ping>(100));
    sim.Run();
    return std::make_pair(sim.dropped_messages(),
                          a.deliveries().size() + b.deliveries().size());
  };
  const auto first = run(42);
  const auto second = run(42);
  EXPECT_GT(first.first, 0u);          // Some messages were lost...
  EXPECT_GT(first.second, 1u);         // ...but not all.
  EXPECT_EQ(first, second);            // Same seed, same realization.
}

TEST(Simulator, ResetReseedsTheFaultRng) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{kInfiniteBandwidth, 0.0});
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_prob = 0.4;
  sim.SetFaultPlan(plan);
  a.ConfigureForward(ia, ib, 64);
  b.ConfigureForward(ib, ia, 64);

  sim.Post(ia, std::make_shared<Ping>(60));
  sim.Run();
  const uint64_t first_run_drops = sim.dropped_messages();
  const size_t first_run_deliveries =
      a.deliveries().size() + b.deliveries().size();

  sim.Reset();
  sim.Post(ia, std::make_shared<Ping>(60));
  sim.Run();
  EXPECT_EQ(sim.dropped_messages(), first_run_drops);
  EXPECT_EQ(a.deliveries().size() + b.deliveries().size(),
            2 * first_run_deliveries);
}

TEST(Simulator, DelayJitterIsDeterministicAndBounded) {
  const auto arrivals = [](uint64_t seed) {
    Simulator sim;
    Recorder a;
    Recorder b;
    const int ia = sim.AddNode(&a);
    const int ib = sim.AddNode(&b);
    sim.Connect(ia, ib, LinkParams{1024.0, 0.0});
    FaultPlan plan;
    plan.seed = seed;
    plan.delay_jitter = 0.5;
    sim.SetFaultPlan(plan);
    a.ConfigureForward(ia, ib, 1024);
    sim.Post(ia, std::make_shared<Ping>(1));
    sim.Run();
    std::vector<double> times;
    for (const auto& d : b.deliveries()) {
      times.push_back(d.arrival);
    }
    return times;
  };
  const auto first = arrivals(9);
  ASSERT_EQ(first.size(), 1u);
  // Base transfer time is 1 s; jitter adds [0, 0.5).
  EXPECT_GE(first[0], 1.0);
  EXPECT_LT(first[0], 1.5);
  EXPECT_EQ(first, arrivals(9));
}

TEST(Simulator, CrashedNodeDeliveriesAndTimersAreSuppressed) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{kInfiniteBandwidth, 0.0});
  FaultPlan plan;
  plan.CrashNode(ib);
  sim.SetFaultPlan(plan);
  a.ConfigureForward(ia, ib, 64);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.ScheduleTimer(ib, 0.5, std::make_shared<Ping>());
  sim.Run();
  EXPECT_EQ(a.deliveries().size(), 1u);  // The Post itself.
  EXPECT_TRUE(b.deliveries().empty());
  EXPECT_EQ(sim.suppressed_deliveries(), 2u);  // Message + timer.
}

TEST(Simulator, NodeCrashWindowSuppressesOnlyInsideTheInterval) {
  Simulator sim;
  Recorder node;
  const int id = sim.AddNode(&node);
  FaultPlan plan;
  plan.CrashNode(id, 1.0, 3.0);
  sim.SetFaultPlan(plan);
  sim.ScheduleTimer(id, 0.5, std::make_shared<Ping>());  // Before: fires.
  sim.ScheduleTimer(id, 2.0, std::make_shared<Ping>());  // Inside: lost.
  sim.ScheduleTimer(id, 4.0, std::make_shared<Ping>());  // After: fires.
  sim.Run();
  ASSERT_EQ(node.deliveries().size(), 2u);
  EXPECT_DOUBLE_EQ(node.deliveries()[0].arrival, 0.5);
  EXPECT_DOUBLE_EQ(node.deliveries()[1].arrival, 4.0);
  EXPECT_EQ(sim.suppressed_deliveries(), 1u);
}

TEST(Simulator, LinkDownWindowDropsSendsInsideTheWindow) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{kInfiniteBandwidth, 0.0});
  FaultPlan plan;
  plan.TakeLinkDown(ia, ib, 0.0, 1.0);
  sim.SetFaultPlan(plan);
  a.ConfigureForward(ia, ib, 64);
  // A forward triggered at t=0 is inside the outage; one triggered by a
  // timer at t=2 is after it.
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.ScheduleTimer(ia, 2.0, std::make_shared<Ping>(1));
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 1u);
  EXPECT_DOUBLE_EQ(b.deliveries()[0].arrival, 2.0);
  EXPECT_EQ(sim.dropped_messages(), 1u);
}

TEST(Simulator, PerLinkDropProbabilityOverridesGlobal) {
  Simulator sim;
  Recorder a;
  Recorder b;
  Recorder c;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  const int ic = sim.AddNode(&c);
  sim.Connect(ia, ib, LinkParams{kInfiniteBandwidth, 0.0});
  sim.Connect(ia, ic, LinkParams{kInfiniteBandwidth, 0.0});
  FaultPlan plan;
  plan.seed = 4;
  plan.drop_prob = 0.0;
  plan.SetLinkDropProb(ia, ib, 1.0 - 1e-12);  // Effectively certain loss.
  sim.SetFaultPlan(plan);
  a.ConfigureForward(ia, ib, 64);
  sim.Post(ia, std::make_shared<Ping>(5));
  sim.Run();
  EXPECT_TRUE(b.deliveries().empty());  // Lossy direction killed them all.
  EXPECT_EQ(sim.dropped_messages(), 1u);
  // The untouched link still works.
  a.ConfigureForward(ia, ic, 64);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  EXPECT_EQ(c.deliveries().size(), 1u);
}

}  // namespace
}  // namespace skypeer::sim
