// Tests of the discrete-event simulator: delivery semantics, bandwidth
// and latency arithmetic, FIFO links, CPU serialization, statistics and
// reset behaviour.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "skypeer/sim/simulator.h"

namespace skypeer::sim {
namespace {

struct Ping : MessageBody {
  explicit Ping(int hops_left = 0) : hops_left(hops_left) {}
  int hops_left;
};

/// Records every delivery; optionally charges CPU and forwards.
class Recorder : public Node {
 public:
  struct Delivery {
    double arrival;     // Event time.
    double start;       // When processing actually began.
    int src;
    size_t bytes;
  };

  explicit Recorder(double cpu_per_message = 0.0)
      : cpu_per_message_(cpu_per_message) {}

  void HandleMessage(Simulator* simulator, const Message& message) override {
    deliveries_.push_back(Delivery{simulator->now(),
                                   simulator->CurrentNodeClock(), message.src,
                                   message.bytes});
    if (cpu_per_message_ > 0.0) {
      simulator->ChargeCpu(cpu_per_message_);
    }
    const auto* ping = dynamic_cast<const Ping*>(message.body.get());
    if (ping != nullptr && ping->hops_left > 0 && forward_to_ >= 0) {
      simulator->Send(self_, forward_to_, forward_bytes_,
                      std::make_shared<Ping>(ping->hops_left - 1));
    }
  }

  void ConfigureForward(int self, int to, size_t bytes) {
    self_ = self;
    forward_to_ = to;
    forward_bytes_ = bytes;
  }

  const std::vector<Delivery>& deliveries() const { return deliveries_; }

 private:
  double cpu_per_message_;
  int self_ = -1;
  int forward_to_ = -1;
  size_t forward_bytes_ = 0;
  std::vector<Delivery> deliveries_;
};

TEST(Simulator, PostDeliversImmediately) {
  Simulator sim;
  Recorder node;
  const int id = sim.AddNode(&node);
  sim.Post(id, std::make_shared<Ping>());
  sim.Run();
  ASSERT_EQ(node.deliveries().size(), 1u);
  EXPECT_EQ(node.deliveries()[0].arrival, 0.0);
  EXPECT_EQ(node.deliveries()[0].src, -1);
}

TEST(Simulator, TransferTimeIsBytesOverBandwidth) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{1024.0, 0.0});
  a.ConfigureForward(ia, ib, 4096);  // 4 KB over 1 KB/s -> 4 s.
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 1u);
  EXPECT_DOUBLE_EQ(b.deliveries()[0].arrival, 4.0);
}

TEST(Simulator, LatencyAddsOnTop) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{1024.0, 0.5});
  a.ConfigureForward(ia, ib, 1024);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 1u);
  EXPECT_DOUBLE_EQ(b.deliveries()[0].arrival, 1.5);
}

TEST(Simulator, InfiniteBandwidthMeansZeroTransfer) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{kInfiniteBandwidth, 0.0});
  a.ConfigureForward(ia, ib, 1 << 30);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 1u);
  EXPECT_DOUBLE_EQ(b.deliveries()[0].arrival, 0.0);
}

TEST(Simulator, LinkIsFifoAndSerializesTransfers) {
  // Two messages sent back-to-back share the link: the second waits.
  Simulator sim;
  Recorder b;

  class DoubleSender : public Node {
   public:
    void HandleMessage(Simulator* simulator, const Message&) override {
      simulator->Send(0, 1, 1024, std::make_shared<Ping>());
      simulator->Send(0, 1, 1024, std::make_shared<Ping>());
    }
  } a;

  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  ASSERT_EQ(ia, 0);
  ASSERT_EQ(ib, 1);
  sim.Connect(0, 1, LinkParams{1024.0, 0.0});
  sim.Post(0, std::make_shared<Ping>());
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 2u);
  EXPECT_DOUBLE_EQ(b.deliveries()[0].arrival, 1.0);
  EXPECT_DOUBLE_EQ(b.deliveries()[1].arrival, 2.0);
}

TEST(Simulator, OppositeDirectionsDoNotShareCapacity) {
  // a->b and b->a are independent channels.
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{1024.0, 0.0});
  a.ConfigureForward(ia, ib, 1024);
  b.ConfigureForward(ib, ia, 1024);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Post(ib, std::make_shared<Ping>(1));
  sim.Run();
  ASSERT_EQ(a.deliveries().size(), 2u);  // Post + reply... both directions.
  ASSERT_EQ(b.deliveries().size(), 2u);
  EXPECT_DOUBLE_EQ(b.deliveries()[1].arrival, 1.0);
  EXPECT_DOUBLE_EQ(a.deliveries()[1].arrival, 1.0);
}

TEST(Simulator, CpuChargesSerializeProcessing) {
  // Node b takes 2 s per message; two messages arriving at ~0 finish at
  // 2 and 4.
  Simulator sim;
  Recorder a;
  Recorder b(/*cpu_per_message=*/2.0);
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{kInfiniteBandwidth, 0.0});

  class TwoPings : public Node {
   public:
    void HandleMessage(Simulator* simulator, const Message&) override {
      simulator->Send(0, 1, 1, std::make_shared<Ping>());
      simulator->Send(0, 1, 1, std::make_shared<Ping>());
    }
  };
  // Replace a's behavior by sending via a helper node is overkill; reuse
  // forward with 0 hops by posting two external messages instead:
  (void)a;
  sim.Post(ib, std::make_shared<Ping>());
  sim.Post(ib, std::make_shared<Ping>());
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 2u);
  EXPECT_DOUBLE_EQ(b.deliveries()[0].start, 0.0);
  // Second message arrived at t=0 but processing began once the first
  // finished.
  EXPECT_DOUBLE_EQ(b.deliveries()[1].start, 2.0);
  EXPECT_DOUBLE_EQ(sim.NodeClock(ib), 4.0);
}

TEST(Simulator, SendDepartsAfterCpuCharge) {
  // A node that charges CPU then forwards: the message departs at its
  // advanced clock, not the arrival time.
  Simulator sim;
  Recorder a(/*cpu_per_message=*/3.0);
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{kInfiniteBandwidth, 0.0});
  a.ConfigureForward(ia, ib, 8);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 1u);
  // ChargeCpu happens before the forward in Recorder::HandleMessage.
  EXPECT_DOUBLE_EQ(b.deliveries()[0].arrival, 3.0);
}

TEST(Simulator, MultiHopChainAccumulatesDelay) {
  Simulator sim;
  Recorder n0;
  Recorder n1;
  Recorder n2;
  const int i0 = sim.AddNode(&n0);
  const int i1 = sim.AddNode(&n1);
  const int i2 = sim.AddNode(&n2);
  sim.Connect(i0, i1, LinkParams{1024.0, 0.0});
  sim.Connect(i1, i2, LinkParams{512.0, 0.0});
  n0.ConfigureForward(i0, i1, 1024);  // 1 s.
  n1.ConfigureForward(i1, i2, 1024);  // 2 s.
  sim.Post(i0, std::make_shared<Ping>(2));
  sim.Run();
  ASSERT_EQ(n2.deliveries().size(), 1u);
  EXPECT_DOUBLE_EQ(n2.deliveries()[0].arrival, 3.0);
}

TEST(Simulator, StatisticsCountBytesAndMessages) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib);
  a.ConfigureForward(ia, ib, 100);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  EXPECT_EQ(sim.total_bytes(), 100u);
  EXPECT_EQ(sim.num_messages(), 1u);  // Post is free; Send counts.
}

TEST(Simulator, ResetClearsStateButKeepsTopology) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{1024.0, 0.0});
  a.ConfigureForward(ia, ib, 2048);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  EXPECT_GT(sim.total_bytes(), 0u);
  EXPECT_GT(sim.MaxClock(), 0.0);

  sim.Reset();
  EXPECT_EQ(sim.total_bytes(), 0u);
  EXPECT_EQ(sim.num_messages(), 0u);
  EXPECT_DOUBLE_EQ(sim.MaxClock(), 0.0);
  EXPECT_TRUE(sim.AreConnected(ia, ib));

  // Link backlog cleared: a fresh send sees a free link.
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 2u);
  EXPECT_DOUBLE_EQ(b.deliveries()[1].arrival, 2.0);
}

TEST(Simulator, SetAllLinkParamsApplies) {
  Simulator sim;
  Recorder a;
  Recorder b;
  const int ia = sim.AddNode(&a);
  const int ib = sim.AddNode(&b);
  sim.Connect(ia, ib, LinkParams{1024.0, 0.0});
  sim.SetAllLinkParams(LinkParams{kInfiniteBandwidth, 0.0});
  a.ConfigureForward(ia, ib, 1 << 20);
  sim.Post(ia, std::make_shared<Ping>(1));
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 1u);
  EXPECT_DOUBLE_EQ(b.deliveries()[0].arrival, 0.0);
}

TEST(Simulator, EqualTimestampsProcessedInSendOrder) {
  Simulator sim;
  Recorder b;
  const int ib_expected = 0;
  const int ib = sim.AddNode(&b);
  ASSERT_EQ(ib, ib_expected);
  // Three posts at t=0 must arrive in post order.
  sim.Post(ib, std::make_shared<Ping>(10));
  sim.Post(ib, std::make_shared<Ping>(20));
  sim.Post(ib, std::make_shared<Ping>(30));
  sim.Run();
  ASSERT_EQ(b.deliveries().size(), 3u);
  // All at time zero; order verified via the shared body pointer not
  // being exposed — instead rely on deterministic arrival ordering by
  // construction: all arrivals at 0.0.
  EXPECT_DOUBLE_EQ(b.deliveries()[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(b.deliveries()[2].arrival, 0.0);
}

}  // namespace
}  // namespace skypeer::sim
