// Unit and property tests for the main-memory R-tree: structural
// invariants under insert/erase churn, and differential testing of every
// query against brute force, parameterized over dimensionality and size.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "skypeer/common/rng.h"
#include "skypeer/rtree/rtree.h"

namespace skypeer {
namespace {

// Reference implementation: flat list of (point, payload).
class BruteForce {
 public:
  explicit BruteForce(int dims) : dims_(dims) {}

  void Insert(const std::vector<double>& p, uint64_t payload) {
    points_.push_back(p);
    payloads_.push_back(payload);
  }

  bool Erase(const std::vector<double>& p, uint64_t payload) {
    for (size_t i = 0; i < points_.size(); ++i) {
      if (payloads_[i] == payload && points_[i] == p) {
        points_.erase(points_.begin() + i);
        payloads_.erase(payloads_.begin() + i);
        return true;
      }
    }
    return false;
  }

  bool AnyDominates(const std::vector<double>& q, bool strict) const {
    for (size_t i = 0; i < points_.size(); ++i) {
      if (Dominates(points_[i], q, strict)) {
        return true;
      }
    }
    return false;
  }

  std::vector<uint64_t> CollectDominated(const std::vector<double>& p,
                                         bool strict) const {
    std::vector<uint64_t> result;
    for (size_t i = 0; i < points_.size(); ++i) {
      if (Dominates(p, points_[i], strict)) {
        result.push_back(payloads_[i]);
      }
    }
    return result;
  }

  std::vector<uint64_t> EraseDominated(const std::vector<double>& p,
                                       bool strict) {
    std::vector<uint64_t> removed = CollectDominated(p, strict);
    for (uint64_t payload : removed) {
      for (size_t i = 0; i < payloads_.size(); ++i) {
        if (payloads_[i] == payload) {
          points_.erase(points_.begin() + i);
          payloads_.erase(payloads_.begin() + i);
          break;
        }
      }
    }
    return removed;
  }

  std::vector<uint64_t> Window(const std::vector<double>& lo,
                               const std::vector<double>& hi) const {
    std::vector<uint64_t> result;
    for (size_t i = 0; i < points_.size(); ++i) {
      bool inside = true;
      for (int d = 0; d < dims_; ++d) {
        if (points_[i][d] < lo[d] || points_[i][d] > hi[d]) {
          inside = false;
          break;
        }
      }
      if (inside) {
        result.push_back(payloads_[i]);
      }
    }
    return result;
  }

  size_t size() const { return points_.size(); }

 private:
  bool Dominates(const std::vector<double>& p, const std::vector<double>& q,
                 bool strict) const {
    bool strictly = false;
    for (int d = 0; d < dims_; ++d) {
      if (strict ? p[d] >= q[d] : p[d] > q[d]) {
        return false;
      }
      if (p[d] < q[d]) {
        strictly = true;
      }
    }
    return strict || strictly;
  }

  int dims_;
  std::vector<std::vector<double>> points_;
  std::vector<uint64_t> payloads_;
};

std::vector<double> RandomPoint(int dims, Rng* rng, int grid = 0) {
  std::vector<double> p(dims);
  for (int d = 0; d < dims; ++d) {
    p[d] = grid > 0 ? rng->UniformInt(0, grid - 1) / static_cast<double>(grid)
                    : rng->Uniform();
  }
  return p;
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// --- basic behaviour --------------------------------------------------------

TEST(RTree, EmptyTree) {
  RTree tree(3);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 1);
  const double q[] = {0.5, 0.5, 0.5};
  EXPECT_FALSE(tree.AnyDominates(q));
  EXPECT_TRUE(tree.EraseDominated(q).empty());
  tree.CheckInvariants();
}

TEST(RTree, SingleInsertAndQueries) {
  RTree tree(2);
  const double p[] = {0.2, 0.3};
  tree.Insert(p, 7);
  EXPECT_EQ(tree.size(), 1u);

  const double dominated[] = {0.5, 0.5};
  const double not_dominated[] = {0.1, 0.5};
  EXPECT_TRUE(tree.AnyDominates(dominated));
  EXPECT_FALSE(tree.AnyDominates(not_dominated));

  // A point does not dominate itself (no strict dimension).
  EXPECT_FALSE(tree.AnyDominates(p));
  // But strict=false removal of a *different* dominating point works:
  std::vector<uint64_t> payloads;
  tree.CollectDominated(not_dominated, false, &payloads);
  EXPECT_TRUE(payloads.empty());
  tree.CheckInvariants();
}

TEST(RTree, EraseExact) {
  RTree tree(2);
  const double a[] = {0.1, 0.2};
  const double b[] = {0.1, 0.2};  // Same coords, different payload.
  tree.Insert(a, 1);
  tree.Insert(b, 2);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.Erase(a, 1));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_FALSE(tree.Erase(a, 1));  // Already gone.
  EXPECT_TRUE(tree.Erase(a, 2));
  EXPECT_TRUE(tree.empty());
  tree.CheckInvariants();
}

TEST(RTree, StrictVsNonStrictDominance) {
  RTree tree(2);
  const double p[] = {0.5, 0.5};
  tree.Insert(p, 1);
  const double tie[] = {0.5, 0.7};  // Tied on dim 0.
  EXPECT_TRUE(tree.AnyDominates(tie, /*strict=*/false));
  EXPECT_FALSE(tree.AnyDominates(tie, /*strict=*/true));
  const double worse[] = {0.6, 0.7};
  EXPECT_TRUE(tree.AnyDominates(worse, /*strict=*/true));
}

TEST(RTree, GrowsAndStaysBalanced) {
  RTree tree(2, /*max_entries=*/4);
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    auto p = RandomPoint(2, &rng);
    tree.Insert(p.data(), i);
  }
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GE(tree.height(), 3);
  tree.CheckInvariants();
}

TEST(RTree, ClearEmptiesTree) {
  RTree tree(2);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    auto p = RandomPoint(2, &rng);
    tree.Insert(p.data(), i);
  }
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 1);
  tree.CheckInvariants();
}

TEST(RTree, MoveConstruction) {
  RTree tree(2);
  const double p[] = {0.1, 0.1};
  tree.Insert(p, 5);
  RTree moved(std::move(tree));
  EXPECT_EQ(moved.size(), 1u);
  const double q[] = {0.9, 0.9};
  EXPECT_TRUE(moved.AnyDominates(q));
}

// --- parameterized differential tests ---------------------------------------

class RTreeDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {
 protected:
  int dims() const { return std::get<0>(GetParam()); }
  int num_points() const { return std::get<1>(GetParam()); }
  int max_entries() const { return std::get<2>(GetParam()); }
  bool gridded() const { return std::get<3>(GetParam()); }
};

TEST_P(RTreeDifferentialTest, QueriesMatchBruteForce) {
  RTree tree(dims(), max_entries());
  BruteForce brute(dims());
  Rng rng(1000 + dims() * 17 + num_points());
  const int grid = gridded() ? 4 : 0;

  for (int i = 0; i < num_points(); ++i) {
    auto p = RandomPoint(dims(), &rng, grid);
    tree.Insert(p.data(), i);
    brute.Insert(p, i);
  }
  tree.CheckInvariants();

  for (int trial = 0; trial < 50; ++trial) {
    auto q = RandomPoint(dims(), &rng, grid);
    for (bool strict : {false, true}) {
      EXPECT_EQ(tree.AnyDominates(q.data(), strict),
                brute.AnyDominates(q, strict));
      std::vector<uint64_t> payloads;
      tree.CollectDominated(q.data(), strict, &payloads);
      EXPECT_EQ(Sorted(payloads), Sorted(brute.CollectDominated(q, strict)));
    }
    auto lo = RandomPoint(dims(), &rng, grid);
    auto hi = lo;
    for (int d = 0; d < dims(); ++d) {
      hi[d] = std::min(1.0, lo[d] + rng.Uniform() * 0.5);
    }
    std::vector<uint64_t> window;
    tree.WindowQuery(lo.data(), hi.data(), &window);
    EXPECT_EQ(Sorted(window), Sorted(brute.Window(lo, hi)));
  }
}

TEST_P(RTreeDifferentialTest, EraseDominatedMatchesBruteForce) {
  RTree tree(dims(), max_entries());
  BruteForce brute(dims());
  Rng rng(2000 + dims() * 31 + num_points());
  const int grid = gridded() ? 4 : 0;

  for (int i = 0; i < num_points(); ++i) {
    auto p = RandomPoint(dims(), &rng, grid);
    tree.Insert(p.data(), i);
    brute.Insert(p, i);
  }

  for (int round = 0; round < 20 && !tree.empty(); ++round) {
    auto q = RandomPoint(dims(), &rng, grid);
    const bool strict = round % 2 == 0;
    EXPECT_EQ(Sorted(tree.EraseDominated(q.data(), strict)),
              Sorted(brute.EraseDominated(q, strict)));
    EXPECT_EQ(tree.size(), brute.size());
    tree.CheckInvariants();
  }
}

TEST_P(RTreeDifferentialTest, MixedChurnKeepsInvariants) {
  RTree tree(dims(), max_entries());
  BruteForce brute(dims());
  Rng rng(3000 + dims());
  const int grid = gridded() ? 4 : 0;
  std::vector<std::pair<std::vector<double>, uint64_t>> live;

  uint64_t next = 0;
  for (int op = 0; op < 3 * num_points(); ++op) {
    const double action = rng.Uniform();
    if (action < 0.6 || live.empty()) {
      auto p = RandomPoint(dims(), &rng, grid);
      tree.Insert(p.data(), next);
      brute.Insert(p, next);
      live.push_back({p, next});
      ++next;
    } else if (action < 0.9) {
      const size_t victim = rng.UniformInt(0, live.size() - 1);
      EXPECT_TRUE(tree.Erase(live[victim].first.data(), live[victim].second));
      EXPECT_TRUE(brute.Erase(live[victim].first, live[victim].second));
      live.erase(live.begin() + victim);
    } else {
      auto q = RandomPoint(dims(), &rng, grid);
      auto removed = Sorted(tree.EraseDominated(q.data(), false));
      EXPECT_EQ(removed, Sorted(brute.EraseDominated(q, false)));
      for (uint64_t payload : removed) {
        live.erase(std::find_if(live.begin(), live.end(),
                                [payload](const auto& entry) {
                                  return entry.second == payload;
                                }));
      }
    }
    EXPECT_EQ(tree.size(), brute.size());
  }
  tree.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreeDifferentialTest,
    ::testing::Values(std::make_tuple(1, 64, 4, false),
                      std::make_tuple(2, 200, 4, false),
                      std::make_tuple(2, 200, 16, true),
                      std::make_tuple(3, 300, 8, false),
                      std::make_tuple(4, 150, 16, true),
                      std::make_tuple(5, 400, 16, false),
                      std::make_tuple(8, 120, 6, false)),
    [](const auto& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "_grid" : "_cont");
    });

}  // namespace
}  // namespace skypeer

namespace skypeer {
namespace {

// --- STR bulk loading ---------------------------------------------------

class RTreeBulkLoadTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int dims() const { return std::get<0>(GetParam()); }
  int num_points() const { return std::get<1>(GetParam()); }
};

TEST_P(RTreeBulkLoadTest, InvariantsAndQueryEquivalence) {
  Rng rng(500 + dims() * 7 + num_points());
  std::vector<double> flat(static_cast<size_t>(num_points()) * dims());
  std::vector<uint64_t> payloads(num_points());
  for (int i = 0; i < num_points(); ++i) {
    for (int d = 0; d < dims(); ++d) {
      flat[i * dims() + d] = rng.Uniform();
    }
    payloads[i] = static_cast<uint64_t>(i);
  }
  RTree bulk =
      RTree::BulkLoad(dims(), flat.data(), payloads.data(), payloads.size());
  EXPECT_EQ(bulk.CheckInvariants(), payloads.size());

  RTree incremental(dims());
  for (int i = 0; i < num_points(); ++i) {
    incremental.Insert(flat.data() + i * dims(), payloads[i]);
  }

  // Both trees must answer identically.
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> q(dims());
    for (int d = 0; d < dims(); ++d) {
      q[d] = rng.Uniform();
    }
    EXPECT_EQ(bulk.AnyDominates(q.data()), incremental.AnyDominates(q.data()));
    std::vector<uint64_t> a;
    std::vector<uint64_t> b;
    bulk.CollectDominated(q.data(), false, &a);
    incremental.CollectDominated(q.data(), false, &b);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST_P(RTreeBulkLoadTest, SupportsMutationAfterLoad) {
  Rng rng(600 + dims());
  std::vector<double> flat(static_cast<size_t>(num_points()) * dims());
  std::vector<uint64_t> payloads(num_points());
  for (int i = 0; i < num_points(); ++i) {
    for (int d = 0; d < dims(); ++d) {
      flat[i * dims() + d] = rng.Uniform();
    }
    payloads[i] = static_cast<uint64_t>(i);
  }
  RTree tree =
      RTree::BulkLoad(dims(), flat.data(), payloads.data(), payloads.size());
  // Erase a third of the points, insert new ones, stay consistent.
  for (int i = 0; i < num_points(); i += 3) {
    EXPECT_TRUE(tree.Erase(flat.data() + i * dims(), payloads[i]));
  }
  std::vector<double> p(dims(), 0.5);
  for (int i = 0; i < 50; ++i) {
    p[0] = rng.Uniform();
    tree.Insert(p.data(), 100000 + i);
  }
  tree.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Sweep, RTreeBulkLoadTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5),
                                            ::testing::Values(1, 15, 64,
                                                              1000, 5000)),
                         [](const auto& info) {
                           return "d" + std::to_string(std::get<0>(info.param)) +
                                  "_n" + std::to_string(std::get<1>(info.param));
                         });

TEST(RTreeBulkLoad, EmptyLoad) {
  RTree tree = RTree::BulkLoad(3, nullptr, nullptr, 0);
  EXPECT_TRUE(tree.empty());
  tree.CheckInvariants();
}

TEST(RTreeBulkLoad, PackedTreesAreShallow) {
  Rng rng(9);
  constexpr int kN = 4096;
  std::vector<double> flat(kN * 2);
  std::vector<uint64_t> payloads(kN);
  for (int i = 0; i < kN; ++i) {
    flat[2 * i] = rng.Uniform();
    flat[2 * i + 1] = rng.Uniform();
    payloads[i] = i;
  }
  RTree bulk = RTree::BulkLoad(2, flat.data(), payloads.data(), kN, 16);
  RTree incremental(2, 16);
  for (int i = 0; i < kN; ++i) {
    incremental.Insert(flat.data() + 2 * i, payloads[i]);
  }
  // STR packs nodes full: 4096/16 = 256 leaves, /16 = 16, /16 = 1 -> 3
  // levels; incremental insertion cannot do better.
  EXPECT_EQ(bulk.height(), 3);
  EXPECT_LE(bulk.height(), incremental.height());
}

}  // namespace
}  // namespace skypeer
