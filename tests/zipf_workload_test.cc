// Tests of the Zipf-skewed workload generator.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "skypeer/engine/zipf_workload.h"

namespace skypeer {
namespace {

std::map<uint32_t, int> SubspaceHistogram(const std::vector<QueryTask>& tasks) {
  std::map<uint32_t, int> histogram;
  for (const QueryTask& task : tasks) {
    ++histogram[task.subspace.mask()];
  }
  return histogram;
}

TEST(ZipfWorkload, ShapeAndDeterminism) {
  ZipfWorkloadConfig config;
  config.query_dims = 3;
  config.num_queries = 200;
  config.seed = 5;
  const auto a = GenerateZipfWorkload(8, config, 40);
  const auto b = GenerateZipfWorkload(8, config, 40);
  ASSERT_EQ(a.size(), 200u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].subspace, b[i].subspace);
    EXPECT_EQ(a[i].initiator_sp, b[i].initiator_sp);
    EXPECT_EQ(a[i].subspace.Count(), 3);
    EXPECT_TRUE(Subspace::FullSpace(8).IsSupersetOf(a[i].subspace));
    EXPECT_GE(a[i].initiator_sp, 0);
    EXPECT_LT(a[i].initiator_sp, 40);
  }
}

TEST(ZipfWorkload, HighExponentConcentrates) {
  ZipfWorkloadConfig skewed;
  skewed.query_dims = 2;
  skewed.num_queries = 500;
  skewed.exponent = 2.5;
  skewed.seed = 7;
  ZipfWorkloadConfig flat = skewed;
  flat.exponent = 0.0;

  const auto skewed_hist =
      SubspaceHistogram(GenerateZipfWorkload(8, skewed, 10));
  const auto flat_hist = SubspaceHistogram(GenerateZipfWorkload(8, flat, 10));

  int skewed_max = 0;
  for (const auto& [mask, count] : skewed_hist) {
    skewed_max = std::max(skewed_max, count);
  }
  int flat_max = 0;
  for (const auto& [mask, count] : flat_hist) {
    flat_max = std::max(flat_max, count);
  }
  // With exponent 2.5 the top subspace should absorb a large share; the
  // uniform workload spreads over C(8,2) = 28 subspaces.
  EXPECT_GT(skewed_max, 250);
  EXPECT_LT(flat_max, 60);
  EXPECT_GT(flat_hist.size(), skewed_hist.size());
}

TEST(ZipfWorkload, ZeroExponentIsUniformish) {
  ZipfWorkloadConfig config;
  config.query_dims = 1;
  config.num_queries = 800;
  config.exponent = 0.0;
  config.seed = 9;
  const auto hist = SubspaceHistogram(GenerateZipfWorkload(4, config, 5));
  EXPECT_EQ(hist.size(), 4u);  // All four singleton subspaces appear.
  for (const auto& [mask, count] : hist) {
    EXPECT_GT(count, 120);  // ~200 each; loose bound.
    EXPECT_LT(count, 280);
  }
}

TEST(ZipfWorkload, DifferentSeedsPickDifferentHotSubspaces) {
  ZipfWorkloadConfig config;
  config.query_dims = 2;
  config.num_queries = 100;
  config.exponent = 3.0;
  config.seed = 1;
  const auto first = SubspaceHistogram(GenerateZipfWorkload(10, config, 5));
  config.seed = 2;
  const auto second = SubspaceHistogram(GenerateZipfWorkload(10, config, 5));
  // The most popular subspace is seed-dependent (the rank order is a
  // seeded shuffle). With C(10,2)=45 candidates a collision is unlikely.
  auto hottest = [](const std::map<uint32_t, int>& hist) {
    uint32_t best_mask = 0;
    int best = -1;
    for (const auto& [mask, count] : hist) {
      if (count > best) {
        best = count;
        best_mask = mask;
      }
    }
    return best_mask;
  };
  EXPECT_NE(hottest(first), hottest(second));
}

}  // namespace
}  // namespace skypeer
