// skypeer_cli — run a SKYPEER simulation from the command line.
//
//   skypeer_cli [--peers N] [--super-peers N] [--points N] [--dims D]
//               [--degree G] [--dist uniform|clustered|correlated|anti]
//               [--k K] [--queries Q] [--variant naive|FTFM|FTPM|RTFM|RTPM|all]
//               [--bandwidth BYTES_PER_S] [--latency S] [--seed S]
//               [--cache] [--verbose]
//
// Prints pre-processing statistics and per-variant averages in the
// paper's three metrics (computational time, total time, volume).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/algo/merge.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/dominance_batch.h"
#include "skypeer/common/parse.h"
#include "skypeer/common/rng.h"
#include "skypeer/common/thread_pool.h"
#include "skypeer/data/generator.h"
#include "skypeer/engine/cost_model.h"
#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"
#include "skypeer/engine/zipf_workload.h"
#include "skypeer/storage/buffer_manager.h"
#include "skypeer/storage/paged_store.h"

namespace {

using namespace skypeer;

struct CliOptions {
  NetworkConfig network;
  int k = 3;
  int queries = 20;
  int threads = 0;  // 0: hardware_concurrency.
  std::string variant = "all";
  double zipf = -1.0;  // < 0: uniform workload.
  bool verbose = false;
  bool calibrate = false;
  std::string cost_profile;  // --cost-profile path; empty = none.
};

void PrintUsageAndExit(const char* binary, int code) {
  std::printf(
      "usage: %s [options]\n"
      "  --peers N        number of peers (default 4000)\n"
      "  --super-peers N  number of super-peers (default: paper rule,\n"
      "                   5%% of peers; 1%% from 20000 peers on)\n"
      "  --points N       points per peer (default 250)\n"
      "  --dims D         data dimensionality, 1..32 (default 8)\n"
      "  --degree G       average super-peer degree (default 4)\n"
      "  --dist NAME      uniform | clustered | correlated | anti\n"
      "  --k K            query dimensionality (default 3)\n"
      "  --queries Q      number of queries (default 20)\n"
      "  --variant V      naive | FTFM | FTPM | RTFM | RTPM | PIPE | all\n"
      "  --topology T     waxman (default) | hypercube\n"
      "  --zipf E         Zipf-skew the subspace popularity with\n"
      "                   exponent E (default: uniform workload)\n"
      "  --bandwidth B    link bandwidth in bytes/s (default 4096)\n"
      "  --latency L      link latency in seconds (default 0)\n"
      "  --seed S         master seed (default 1)\n"
      "  --threads N      worker threads (default: hardware concurrency;\n"
      "                   1 = sequential). Results and metrics do not\n"
      "                   depend on the thread count\n"
      "  --no-measure-cpu charge zero CPU to the virtual clocks instead\n"
      "                   of measured host time; makes every reported\n"
      "                   metric bit-reproducible across runs\n"
      "  --cost-model M   how CPU is charged to the virtual clocks:\n"
      "                   measured (host time, default), calibrated or\n"
      "                   unit (deterministic seconds from counted ops;\n"
      "                   makes all metrics bit-reproducible)\n"
      "  --cost-profile F load per-op cost constants from F (key=value\n"
      "                   lines, see --calibrate); implies calibrated\n"
      "                   charging unless --cost-model says otherwise\n"
      "  --calibrate      measure this host's per-op cost constants and\n"
      "                   print them as a profile on stdout, then exit\n"
      "  --scan-chunk N   split super-peer threshold scans into chunks of\n"
      "                   N points run on the thread pool (default 0 =\n"
      "                   sequential scan). Results are identical either\n"
      "                   way\n"
      "  --block-skip     consult per-block zone-map summaries during\n"
      "                   threshold scans: store blocks dominated by the\n"
      "                   live window are consumed without per-point\n"
      "                   dominance tests, and whole pages of such blocks\n"
      "                   are never read in paged mode. Results and all\n"
      "                   simulated metrics except the new skip counters\n"
      "                   are identical either way\n"
      "  --speculative-rt stage RT*M/pipeline local scans concurrently\n"
      "                   under the initiator's fixed threshold and\n"
      "                   reconcile when the refined threshold arrives;\n"
      "                   results and simulated metrics are identical\n"
      "  --net-threads N  scope the worker pool to the network instead of\n"
      "                   the process-wide pool (default 0 = global pool)\n"
      "  --filter-set N   broadcast at most N sampled filter points from\n"
      "                   the initiator's local skyline with every query\n"
      "                   (default 0 = no filter). Skylines are identical\n"
      "                   either way; ext-SKY shipping volume drops\n"
      "  --churn-events N schedule N seeded membership events (joins,\n"
      "                   removals, data replacements cycling) over the\n"
      "                   first N queries; each event applies atomically\n"
      "                   between queries while its maintenance cost is\n"
      "                   charged mid-query on the affected super-peer's\n"
      "                   virtual clock (default 0 = no scheduled churn).\n"
      "                   Implies dynamic membership\n"
      "  --churn-rate R   mean in-query charge instant in seconds of a\n"
      "                   scheduled event (exponential; default 0.05)\n"
      "  --churn-seed S   seed of the churn schedule (default: derived\n"
      "                   from --seed)\n"
      "  --rebuild-maintenance  peer removals rebuild the super-peer\n"
      "                   store from the retained lists instead of the\n"
      "                   default incremental drop + candidate re-merge;\n"
      "                   stores and all metrics are bit-identical\n"
      "  --cache          enable the per-subspace result cache\n"
      "  --cache-cap N    bound the result cache to N entries with LRU\n"
      "                   eviction (default 0 = unbounded); results and\n"
      "                   simulated metrics are identical at any cap\n"
      "  --page-size B    store page size in bytes, a power of two in\n"
      "                   [4096, 1048576] (default 4096); fixes the\n"
      "                   logical page-charging geometry in both store\n"
      "                   modes\n"
      "  --buffer-pages N beyond-RAM stores: spill super-peer stores to\n"
      "                   disk pages behind a pinning buffer manager of N\n"
      "                   frames (N >= 2; default 0 = in-memory). Results\n"
      "                   and every simulated metric are bit-identical to\n"
      "                   the in-memory mode\n"
      "  --force-scalar   pin the dominance kernels to the scalar path\n"
      "                   instead of runtime SIMD dispatch (same effect as\n"
      "                   SKYPEER_FORCE_SCALAR=1). Results and metrics are\n"
      "                   bit-identical either way\n"
      "  --reliable       run the query protocol over the reliable\n"
      "                   per-hop transport (ACKs, retransmission,\n"
      "                   rerouting, coverage reporting). Implied by any\n"
      "                   fault flag below\n"
      "  --drop-prob P    lose each transmission with probability P\n"
      "                   (deterministic per seed)\n"
      "  --delay-jitter J add uniform extra delay in [0, J) seconds to\n"
      "                   every arrival\n"
      "  --crash-sp I     crash super-peer I for every query (repeatable)\n"
      "  --fault-seed S   seed of the fault RNG stream (default: derived\n"
      "                   from --seed)\n"
      "  --ack-timeout T  base ACK timeout in seconds before a hop\n"
      "                   retransmits (default 0.25; exponential backoff)\n"
      "  --max-retries N  retransmissions before a hop is abandoned and\n"
      "                   recovery kicks in (default 8)\n"
      "  --query-deadline S  initiator deadline per query; on expiry the\n"
      "                   collected partial result is returned, flagged\n"
      "                   (default 0 = no deadline)\n"
      "  --verbose        per-query output\n",
      binary);
  std::exit(code);
}

CliOptions Parse(int argc, char** argv) {
  CliOptions options;
  auto next_value = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[*i]);
      PrintUsageAndExit(argv[0], 1);
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--peers") == 0) {
      options.network.num_peers = static_cast<int>(
          ParseIntFlag("--peers", next_value(&i), 1, 100'000'000));
    } else if (std::strcmp(arg, "--super-peers") == 0) {
      options.network.num_super_peers = static_cast<int>(
          ParseIntFlag("--super-peers", next_value(&i), 0, 1'000'000));
    } else if (std::strcmp(arg, "--points") == 0) {
      options.network.points_per_peer = static_cast<int>(
          ParseIntFlag("--points", next_value(&i), 0, 100'000'000));
    } else if (std::strcmp(arg, "--dims") == 0) {
      options.network.dims =
          static_cast<int>(ParseIntFlag("--dims", next_value(&i), 1, 32));
    } else if (std::strcmp(arg, "--degree") == 0) {
      options.network.degree_sp =
          ParseDoubleFlag("--degree", next_value(&i), 0.0, 1e6);
    } else if (std::strcmp(arg, "--dist") == 0) {
      const std::string name = next_value(&i);
      if (name == "uniform") {
        options.network.distribution = Distribution::kUniform;
      } else if (name == "clustered") {
        options.network.distribution = Distribution::kClustered;
      } else if (name == "correlated") {
        options.network.distribution = Distribution::kCorrelated;
      } else if (name == "anti" || name == "anticorrelated") {
        options.network.distribution = Distribution::kAnticorrelated;
      } else {
        std::fprintf(stderr, "unknown distribution: %s\n", name.c_str());
        PrintUsageAndExit(argv[0], 1);
      }
    } else if (std::strcmp(arg, "--k") == 0) {
      options.k = static_cast<int>(ParseIntFlag("--k", next_value(&i), 1, 32));
    } else if (std::strcmp(arg, "--queries") == 0) {
      options.queries = static_cast<int>(
          ParseIntFlag("--queries", next_value(&i), 1, 1'000'000));
    } else if (std::strcmp(arg, "--variant") == 0) {
      options.variant = next_value(&i);
    } else if (std::strcmp(arg, "--topology") == 0) {
      const std::string name = next_value(&i);
      if (name == "waxman") {
        options.network.topology = BackboneTopology::kWaxman;
      } else if (name == "hypercube") {
        options.network.topology = BackboneTopology::kHypercube;
      } else {
        std::fprintf(stderr, "unknown topology: %s\n", name.c_str());
        PrintUsageAndExit(argv[0], 1);
      }
    } else if (std::strcmp(arg, "--bandwidth") == 0) {
      options.network.bandwidth =
          ParseDoubleFlag("--bandwidth", next_value(&i), 0.0, 1e18);
    } else if (std::strcmp(arg, "--latency") == 0) {
      options.network.latency =
          ParseDoubleFlag("--latency", next_value(&i), 0.0, 1e9);
    } else if (std::strcmp(arg, "--zipf") == 0) {
      options.zipf = ParseDoubleFlag("--zipf", next_value(&i), 0.0, 100.0);
    } else if (std::strcmp(arg, "--seed") == 0) {
      options.network.seed = ParseU64Flag("--seed", next_value(&i));
    } else if (std::strcmp(arg, "--threads") == 0) {
      options.threads = static_cast<int>(
          ParseIntFlag("--threads", next_value(&i), 0, 4096));
    } else if (std::strcmp(arg, "--scan-chunk") == 0) {
      options.network.scan_chunk_size =
          static_cast<size_t>(ParseU64Flag("--scan-chunk", next_value(&i)));
    } else if (std::strcmp(arg, "--filter-set") == 0) {
      options.network.filter_set_size =
          static_cast<size_t>(ParseU64Flag("--filter-set", next_value(&i)));
    } else if (std::strcmp(arg, "--block-skip") == 0) {
      options.network.block_skip = true;
    } else if (std::strcmp(arg, "--speculative-rt") == 0) {
      options.network.speculative_rt = true;
    } else if (std::strcmp(arg, "--net-threads") == 0) {
      options.network.threads = static_cast<int>(
          ParseIntFlag("--net-threads", next_value(&i), 0, 4096));
    } else if (std::strcmp(arg, "--no-measure-cpu") == 0) {
      options.network.measure_cpu = false;
    } else if (std::strcmp(arg, "--cost-model") == 0) {
      const std::string name = next_value(&i);
      CostModelMode mode;
      if (!ParseCostModelMode(name, &mode)) {
        std::fprintf(stderr, "unknown cost model: %s\n", name.c_str());
        PrintUsageAndExit(argv[0], 1);
      }
      switch (mode) {
        case CostModelMode::kMeasured:
          options.network.cost_model = CostModel::Measured();
          break;
        case CostModelMode::kCalibrated:
          options.network.cost_model = CostModel::Calibrated();
          break;
        case CostModelMode::kUnit:
          options.network.cost_model = CostModel::Unit();
          break;
      }
    } else if (std::strcmp(arg, "--cost-profile") == 0) {
      options.cost_profile = next_value(&i);
    } else if (std::strcmp(arg, "--calibrate") == 0) {
      options.calibrate = true;
    } else if (std::strcmp(arg, "--churn-events") == 0) {
      options.network.churn_events = static_cast<int>(
          ParseIntFlag("--churn-events", next_value(&i), 0, 1'000'000));
      if (options.network.churn_events > 0) {
        options.network.dynamic_membership = true;
      }
    } else if (std::strcmp(arg, "--churn-rate") == 0) {
      options.network.churn_rate =
          ParseDoubleFlag("--churn-rate", next_value(&i), 0.0, 1e9);
    } else if (std::strcmp(arg, "--churn-seed") == 0) {
      options.network.churn_seed =
          ParseU64Flag("--churn-seed", next_value(&i));
    } else if (std::strcmp(arg, "--rebuild-maintenance") == 0) {
      options.network.incremental_maintenance = false;
    } else if (std::strcmp(arg, "--cache") == 0) {
      options.network.enable_cache = true;
    } else if (std::strcmp(arg, "--cache-cap") == 0) {
      options.network.cache_max_entries =
          static_cast<size_t>(ParseU64Flag("--cache-cap", next_value(&i)));
    } else if (std::strcmp(arg, "--page-size") == 0) {
      options.network.page_size =
          static_cast<size_t>(ParseU64Flag("--page-size", next_value(&i)));
    } else if (std::strcmp(arg, "--buffer-pages") == 0) {
      options.network.buffer_pages =
          static_cast<size_t>(ParseU64Flag("--buffer-pages", next_value(&i)));
    } else if (std::strcmp(arg, "--force-scalar") == 0) {
      SetForceScalarKernels(true);
    } else if (std::strcmp(arg, "--reliable") == 0) {
      options.network.reliable = true;
    } else if (std::strcmp(arg, "--drop-prob") == 0) {
      options.network.drop_prob =
          ParseDoubleFlag("--drop-prob", next_value(&i), 0.0, 1.0);
      options.network.reliable = true;
    } else if (std::strcmp(arg, "--delay-jitter") == 0) {
      options.network.delay_jitter =
          ParseDoubleFlag("--delay-jitter", next_value(&i), 0.0, 1e9);
      options.network.reliable = true;
    } else if (std::strcmp(arg, "--crash-sp") == 0) {
      options.network.crashed_sps.push_back(static_cast<int>(
          ParseIntFlag("--crash-sp", next_value(&i), 0, 1'000'000)));
      options.network.reliable = true;
    } else if (std::strcmp(arg, "--fault-seed") == 0) {
      options.network.fault_seed = ParseU64Flag("--fault-seed", next_value(&i));
    } else if (std::strcmp(arg, "--ack-timeout") == 0) {
      options.network.ack_timeout =
          ParseDoubleFlag("--ack-timeout", next_value(&i), 0.0, 1e9);
    } else if (std::strcmp(arg, "--max-retries") == 0) {
      options.network.max_retries = static_cast<int>(
          ParseIntFlag("--max-retries", next_value(&i), 0, 1'000'000));
    } else if (std::strcmp(arg, "--query-deadline") == 0) {
      options.network.query_deadline =
          ParseDoubleFlag("--query-deadline", next_value(&i), 0.0, 1e18);
    } else if (std::strcmp(arg, "--verbose") == 0) {
      options.verbose = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      PrintUsageAndExit(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      PrintUsageAndExit(argv[0], 1);
    }
  }
  return options;
}

std::vector<Variant> SelectVariants(const std::string& name) {
  if (name == "all") {
    std::vector<Variant> all(kAllVariants, kAllVariants + 5);
    all.push_back(Variant::kPipeline);
    return all;
  }
  for (Variant variant : kAllVariants) {
    if (name == VariantName(variant)) {
      return {variant};
    }
  }
  if (name == VariantName(Variant::kPipeline)) {
    return {Variant::kPipeline};
  }
  std::fprintf(stderr, "unknown variant: %s\n", name.c_str());
  std::exit(1);
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

template <typename Fn>
double BestWallSeconds(int repeats, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, SecondsSince(start));
  }
  return best;
}

double ClampCost(double per_op) { return per_op > 1e-12 ? per_op : 1e-12; }

// Measures this host's per-op cost constants, one microbench per counter
// class. Attribution is by dominant counter: each benchmark is shaped so
// the target operation class dominates its runtime, the classes
// calibrated before it are subtracted from the wall time, and the
// residual is attributed to the target. Residuals are clamped positive so
// measurement noise can never produce a non-monotone model.
CostModel Calibrate(uint64_t seed) {
  CostModel model = CostModel::Calibrated();
  Rng rng(seed);
  const int dims = 8;
  const Subspace sub4 = Subspace::FromDims({0, 1, 2, 3});

  // sort_step_s: f-sorting a large point set is SortCost(n) units.
  const PointSet big = GenerateUniform(dims, size_t{1} << 17, &rng);
  ResultList sorted(dims);
  {
    const double wall =
        BestWallSeconds(3, [&] { sorted = BuildSortedByF(big); });
    model.sort_step_s =
        ClampCost(wall / static_cast<double>(SortCost(big.size())));
  }

  // dominance_test_s: block-nested-loop skyline over a high-dimensional
  // set; window dominance tests dominate everything else it does.
  {
    const PointSet data = GenerateUniform(dims, 4096, &rng);
    OpCounts ops;
    const double wall = BestWallSeconds(3, [&] {
      ops = OpCounts{};
      BnlSkyline(data, Subspace::FullSpace(dims), /*ext=*/false, &ops);
    });
    model.dominance_test_s = ClampCost(
        wall / static_cast<double>(std::max<uint64_t>(1, ops.dominance_tests)));
  }

  // scan_step_s: linear-window threshold scan; the non-dominance residual
  // is the per-point scan overhead.
  {
    ThresholdScanOptions opts;
    opts.use_rtree = false;
    ThresholdScanStats stats;
    const double wall = BestWallSeconds(3, [&] {
      stats = ThresholdScanStats{};
      SortedSkyline(sorted, sub4, opts, &stats);
    });
    const double known =
        static_cast<double>(stats.ops.dominance_tests) *
            model.dominance_test_s +
        static_cast<double>(stats.ops.sort_steps) * model.sort_step_s;
    model.scan_step_s = ClampCost(
        (wall - known) /
        static_cast<double>(std::max<uint64_t>(1, stats.ops.scan_steps)));
  }

  // rtree_node_visit_s: the same scan with the R-tree window index; the
  // residual over the already-known classes is tree traversal.
  {
    ThresholdScanOptions opts;  // use_rtree defaults to true
    ThresholdScanStats stats;
    const double wall = BestWallSeconds(3, [&] {
      stats = ThresholdScanStats{};
      SortedSkyline(sorted, sub4, opts, &stats);
    });
    const double known =
        static_cast<double>(stats.ops.dominance_tests) *
            model.dominance_test_s +
        static_cast<double>(stats.ops.scan_steps) * model.scan_step_s +
        static_cast<double>(stats.ops.sort_steps) * model.sort_step_s;
    model.rtree_node_visit_s = ClampCost(
        (wall - known) /
        static_cast<double>(std::max<uint64_t>(1, stats.ops.rtree_node_visits)));
  }

  // merge_pull_s: k-way merge of f-sorted lists; the residual over all
  // previously calibrated classes is heap-pull overhead.
  {
    std::vector<ResultList> lists;
    for (int i = 0; i < 16; ++i) {
      lists.push_back(BuildSortedByF(GenerateUniform(dims, 8192, &rng)));
    }
    ThresholdScanStats stats;
    const double wall = BestWallSeconds(3, [&] {
      stats = ThresholdScanStats{};
      MergeSortedSkylines(dims, lists, sub4, ThresholdScanOptions{}, &stats);
    });
    const double known =
        static_cast<double>(stats.ops.dominance_tests) *
            model.dominance_test_s +
        static_cast<double>(stats.ops.scan_steps) * model.scan_step_s +
        static_cast<double>(stats.ops.sort_steps) * model.sort_step_s +
        static_cast<double>(stats.ops.rtree_node_visits) *
            model.rtree_node_visit_s;
    model.merge_pull_s = ClampCost(
        (wall - known) /
        static_cast<double>(std::max<uint64_t>(1, stats.ops.merge_pulls)));
  }

  // byte_s: streaming copy bandwidth as the marshalling proxy.
  {
    const size_t bytes = size_t{1} << 24;
    std::vector<unsigned char> src(bytes, 0x5a);
    std::vector<unsigned char> dst(bytes);
    const int reps = 8;
    const double wall = BestWallSeconds(3, [&] {
      for (int r = 0; r < reps; ++r) {
        std::memcpy(dst.data(), src.data(), bytes);
        // Data-depend the next copy on this one so it is not elided.
        src[0] = static_cast<unsigned char>(dst[bytes - 1] + 1);
      }
    });
    model.byte_s =
        ClampCost(wall / (static_cast<double>(bytes) * reps));
  }

  // page_read_s / page_byte_s: stream the same paged store at two page
  // sizes through a pool far smaller than the store (every pin is a cold
  // read). Total payload bytes are equal, so the wall-time difference is
  // the per-page fixed cost; the residual of the large-page run is the
  // per-byte streaming cost.
  {
    const ResultList spill =
        BuildSortedByF(GenerateUniform(dims, size_t{1} << 15, &rng));
    const auto stream = [&](size_t page_size, size_t* pages) {
      BufferManager buffer(page_size, /*num_frames=*/4);
      const PagedStore store = PagedStore::Build(spill, &buffer);
      *pages = store.num_pages();
      ResultList decoded(dims);
      return BestWallSeconds(3, [&] { decoded = store.Materialize(); });
    };
    size_t pages_small = 0;
    size_t pages_large = 0;
    const double wall_small = stream(kMinPageSize, &pages_small);
    const double wall_large = stream(size_t{1} << 16, &pages_large);
    const double extra_pages =
        static_cast<double>(pages_small) - static_cast<double>(pages_large);
    model.page_read_s =
        ClampCost((wall_small - wall_large) / std::max(1.0, extra_pages));
    const double large_bytes =
        static_cast<double>(pages_large) * static_cast<double>(size_t{1} << 16);
    model.page_byte_s = ClampCost(
        (wall_large - static_cast<double>(pages_large) * model.page_read_s) /
        std::max(1.0, large_bytes));
  }
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options = Parse(argc, argv);
  ThreadPool::SetGlobalConcurrency(options.threads);

  if (options.calibrate) {
    const CostModel profile = Calibrate(options.network.seed);
    std::fputs(profile.ToProfileString().c_str(), stdout);
    return 0;
  }
  if (!options.cost_profile.empty()) {
    std::FILE* file = std::fopen(options.cost_profile.c_str(), "rb");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot open cost profile: %s\n",
                   options.cost_profile.c_str());
      return 1;
    }
    std::string text;
    char buffer[4096];
    size_t got;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
      text.append(buffer, got);
    }
    std::fclose(file);
    // A profile only makes sense with counted charging; keep an explicit
    // `--cost-model unit` but upgrade the measured default to calibrated.
    if (!options.network.cost_model.counted()) {
      options.network.cost_model.mode = CostModelMode::kCalibrated;
    }
    if (!options.network.cost_model.LoadProfileString(text)) {
      std::fprintf(stderr, "malformed cost profile: %s\n",
                   options.cost_profile.c_str());
      return 1;
    }
  }

  const Status status = SkypeerNetwork::Validate(options.network);
  if (!status.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  if (options.k < 1 || options.k > options.network.dims) {
    std::fprintf(stderr, "invalid query dimensionality k=%d (d=%d)\n",
                 options.k, options.network.dims);
    return 1;
  }

  SkypeerNetwork network(options.network);
  std::printf("building network: %d peers / %d super-peers, %s data, d=%d\n",
              network.num_peers(), network.num_super_peers(),
              DistributionName(options.network.distribution),
              options.network.dims);
  std::printf("dominance kernels: %s\n",
              DomKernelModeName(ActiveDomKernelMode()));
  std::printf("cpu charging: %s\n",
              CostModelModeName(options.network.cost_model.mode));
  if (options.network.buffer_pages > 0) {
    std::printf("store paging: %zu-byte pages, %zu-frame buffer pool\n",
                options.network.page_size, options.network.buffer_pages);
  }
  if (options.network.block_skip) {
    std::printf("block skip: zone-map summaries consulted before each "
                "8-point store block\n");
  }
  const PreprocessStats stats = network.Preprocess();
  std::printf(
      "pre-processing: n=%zu  SEL_p=%.1f%%  SEL_sp=%.1f%%  "
      "(peer cpu %.2fs, super-peer cpu %.2fs)\n\n",
      stats.total_points, stats.sel_p() * 100, stats.sel_sp() * 100,
      stats.peer_cpu_s, stats.super_peer_cpu_s);

  std::vector<QueryTask> tasks;
  if (options.zipf >= 0.0) {
    ZipfWorkloadConfig zipf_config;
    zipf_config.query_dims = options.k;
    zipf_config.num_queries = options.queries;
    zipf_config.exponent = options.zipf;
    zipf_config.seed = options.network.seed + 99;
    tasks = GenerateZipfWorkload(options.network.dims, zipf_config,
                                 network.num_super_peers());
  } else {
    tasks =
        GenerateWorkload(options.network.dims, options.k, options.queries,
                         network.num_super_peers(), options.network.seed + 99);
  }

  std::printf("%-6s | %11s | %10s | %13s | %12s | %9s | %7s\n", "variant",
              "comp (ms)", "total (s)", "total p95 (s)", "volume (KB)",
              "messages", "result");
  std::printf(
      "-------+-------------+------------+---------------+--------------+"
      "-----------+--------\n");
  for (Variant variant : SelectVariants(options.variant)) {
    AggregateMetrics aggregate;
    if (options.verbose) {
      // Per-query output wants interleaved prints; run sequentially.
      for (const QueryTask& task : tasks) {
        const QueryResult result =
            network.ExecuteQuery(task.subspace, task.initiator_sp, variant);
        aggregate.Add(result.metrics);
        std::printf("  [%s] U=%s init=%d -> %zu points, %.2f s, %.1f KB\n",
                    VariantName(variant), task.subspace.ToString().c_str(),
                    task.initiator_sp, result.metrics.result_size,
                    result.metrics.total_time_s, result.metrics.volume_kb());
        std::printf("        ops: %s\n", result.metrics.ops.ToString().c_str());
      }
    } else {
      // Distributes the batch over the thread pool when --threads > 1.
      aggregate = RunWorkload(&network, tasks, variant);
    }
    std::printf("%-6s | %11.3f | %10.2f | %13.2f | %12.1f | %9.1f | %7.1f\n",
                VariantName(variant), aggregate.avg_comp_s() * 1e3,
                aggregate.avg_total_s(), aggregate.total_s.Percentile(95),
                aggregate.avg_kb(), aggregate.avg_messages(),
                aggregate.avg_result());
    if (options.network.reliable) {
      std::printf(
          "       | reliability: coverage %.1f%%  partial %zu/%zu  "
          "retransmits/query %.1f\n",
          aggregate.avg_coverage() * 100, aggregate.partial_queries,
          aggregate.queries, aggregate.avg_retransmits());
    }
    if (options.network.block_skip) {
      // Workload totals of the zone-map scan counters — deterministic
      // logical ops, so they participate in determinism diffs (unlike
      // the "physical:" lines below).
      std::printf(
          "       | block skip: summary_tests=%llu blocks_skipped=%llu "
          "scan_steps=%llu dominance_tests=%llu page_reads=%llu\n",
          static_cast<unsigned long long>(aggregate.total_ops.summary_tests),
          static_cast<unsigned long long>(aggregate.total_ops.blocks_skipped),
          static_cast<unsigned long long>(aggregate.total_ops.scan_steps),
          static_cast<unsigned long long>(aggregate.total_ops.dominance_tests),
          static_cast<unsigned long long>(aggregate.total_ops.page_reads));
    }
  }
  if (options.network.churn_events > 0) {
    // Deterministic: the schedule, victim picks and maintenance ops are
    // pure functions of the seeds and the query order, so this line
    // participates in determinism diffs.
    const SkypeerNetwork::ChurnStats& cs = network.churn_stats();
    std::printf(
        "churn: events=%zu joins=%llu removals=%llu replacements=%llu "
        "skipped=%llu\n",
        network.churn_plan().size(),
        static_cast<unsigned long long>(cs.joins),
        static_cast<unsigned long long>(cs.removals),
        static_cast<unsigned long long>(cs.replacements),
        static_cast<unsigned long long>(cs.skipped));
    std::printf("churn: maintenance ops: %s\n",
                cs.maintenance_ops.ToString().c_str());
  }
  // Out-of-band physical counters: hit/miss/eviction totals depend on
  // thread interleaving in parallel workloads, so they are printed under
  // a greppable prefix and never enter determinism comparisons.
  if (const SubspaceScanTraceCache* cache = network.result_cache()) {
    const SubspaceScanTraceCache::Stats cs = cache->stats();
    std::printf(
        "physical: cache hits=%llu misses=%llu evictions=%llu "
        "entries=%llu bytes=%llu\n",
        static_cast<unsigned long long>(cs.hits),
        static_cast<unsigned long long>(cs.misses),
        static_cast<unsigned long long>(cs.evictions),
        static_cast<unsigned long long>(cs.entries),
        static_cast<unsigned long long>(cs.bytes));
  }
  if (const BufferManager* buffer = network.buffer_manager()) {
    const BufferManager::Stats bs = buffer->stats();
    std::printf(
        "physical: buffer hits=%llu misses=%llu evictions=%llu "
        "prefetches=%llu prefetch_hits=%llu pages_written=%llu\n",
        static_cast<unsigned long long>(bs.hits),
        static_cast<unsigned long long>(bs.misses),
        static_cast<unsigned long long>(bs.evictions),
        static_cast<unsigned long long>(bs.prefetches_issued),
        static_cast<unsigned long long>(bs.prefetch_hits),
        static_cast<unsigned long long>(bs.pages_written));
  }
  return 0;
}
