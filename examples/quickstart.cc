// Quickstart: build a small SKYPEER network, run the pre-processing
// phase, and answer a subspace skyline query with every strategy.
//
//   $ ./quickstart

#include <cstdio>

#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"

int main() {
  using namespace skypeer;

  // 1. Configure a network: 200 peers under 20 super-peers, each peer
  //    holding 100 uniform 6-dimensional points.
  NetworkConfig config;
  config.num_peers = 200;
  config.num_super_peers = 20;
  config.points_per_peer = 100;
  config.dims = 6;
  config.seed = 2024;

  SkypeerNetwork network(config);

  // 2. Pre-processing (paper §5.3): peers compute extended skylines and
  //    upload them; super-peers merge.
  const PreprocessStats stats = network.Preprocess();
  std::printf("dataset: %zu points over %d peers, %d super-peers\n",
              network.total_points(), network.num_peers(),
              network.num_super_peers());
  std::printf("pre-processing: SEL_p=%.1f%%  SEL_sp=%.1f%%\n",
              stats.sel_p() * 100, stats.sel_sp() * 100);

  // 3. A subspace skyline query on dimensions {0, 2, 5}, issued at
  //    super-peer 7, under each strategy.
  const Subspace u = Subspace::FromDims({0, 2, 5});
  std::printf("\nquery U=%s\n", u.ToString().c_str());
  for (Variant variant : kAllVariants) {
    const QueryResult result = network.ExecuteQuery(u, /*initiator_sp=*/7,
                                                    variant);
    std::printf(
        "%-6s -> %3zu skyline points | comp %.3f ms | total %6.2f s | "
        "%7.1f KB in %llu messages\n",
        VariantName(variant), result.metrics.result_size,
        result.metrics.computational_time_s * 1e3,
        result.metrics.total_time_s, result.metrics.volume_kb(),
        static_cast<unsigned long long>(result.metrics.messages));
  }

  // 4. The first few skyline points.
  const QueryResult result = network.ExecuteQuery(u, 7, Variant::kFTPM);
  std::printf("\nfirst skyline points (id: queried coordinates):\n");
  for (size_t i = 0; i < result.skyline.size() && i < 5; ++i) {
    std::printf("  #%llu:",
                static_cast<unsigned long long>(result.skyline.points.id(i)));
    for (int dim : u) {
      std::printf(" %.3f", result.skyline.points[i][dim]);
    }
    std::printf("\n");
  }
  return 0;
}
