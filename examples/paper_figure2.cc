// Walkthrough of the paper's Figure 2 (peer pre-processing example):
// three peers P_A, P_B, P_C with 4-dimensional datasets compute their
// local extended skylines and super-peer SP_A merges them.
//
//   $ ./paper_figure2

#include <cstdio>
#include <string>
#include <vector>

#include "skypeer/algo/extended_skyline.h"
#include "skypeer/algo/merge.h"
#include "skypeer/common/point_set.h"

namespace {

using skypeer::PointId;
using skypeer::PointSet;
using skypeer::ResultList;

void PrintList(const char* label, const ResultList& list,
               const std::vector<std::string>& names) {
  std::printf("%s (sorted by f):\n", label);
  for (size_t i = 0; i < list.size(); ++i) {
    std::printf("  %-3s f=%.0f  (", names[list.points.id(i)].c_str(),
                list.f[i]);
    for (int d = 0; d < list.points.dims(); ++d) {
      std::printf("%s%.0f", d > 0 ? " " : "", list.points[i][d]);
    }
    std::printf(")\n");
  }
}

}  // namespace

int main() {
  // The datasets of Figure 2 (X, Y, Z, W). Ids 0..4 = A1..A5,
  // 5..9 = B1..B5, 10..14 = C1..C5.
  PointSet peer_a(4);
  {
    const double rows[5][4] = {{2, 2, 2, 2},
                               {1, 3, 2, 3},
                               {1, 3, 5, 4},
                               {2, 3, 2, 1},
                               {5, 2, 4, 1}};
    for (int i = 0; i < 5; ++i) {
      peer_a.Append(rows[i], i);
    }
  }
  PointSet peer_b(4);
  {
    const double rows[5][4] = {{3, 1, 1, 3},
                               {4, 5, 4, 6},
                               {2, 3, 3, 3},
                               {1, 2, 3, 4},
                               {5, 5, 5, 5}};
    for (int i = 0; i < 5; ++i) {
      peer_b.Append(rows[i], 5 + i);
    }
  }
  PointSet peer_c(4);
  {
    const double rows[5][4] = {{5, 7, 6, 8},
                               {7, 5, 8, 5},
                               {6, 5, 5, 6},
                               {1, 1, 3, 4},
                               {6, 6, 6, 4}};
    for (int i = 0; i < 5; ++i) {
      peer_c.Append(rows[i], 10 + i);
    }
  }

  std::vector<std::string> names;
  for (const char* prefix : {"A", "B", "C"}) {
    for (int i = 1; i <= 5; ++i) {
      names.push_back(std::string(prefix) + std::to_string(i));
    }
  }

  std::printf("Peer pre-processing (paper Figure 2, SP_A with peers "
              "P_A, P_B, P_C):\n\n");

  // Each peer computes its local extended skyline in the full space.
  std::vector<ResultList> uploads;
  const char* labels[3] = {"P_A extended skyline", "P_B extended skyline",
                           "P_C extended skyline"};
  int peer_index = 0;
  for (const PointSet* data : {&peer_a, &peer_b, &peer_c}) {
    ResultList ext = skypeer::ExtendedSkyline(*data);
    PrintList(labels[peer_index++], ext, names);
    std::printf("\n");
    uploads.push_back(std::move(ext));
  }

  // The super-peer merges the uploads into its query-time store
  // (Algorithm 2 under ext-dominance).
  skypeer::ThresholdScanOptions options;
  options.ext = true;
  ResultList store = skypeer::MergeSortedSkylines(
      uploads, skypeer::Subspace::FullSpace(4), options);
  PrintList("SP_A merged extended skyline", store, names);

  std::printf(
      "\nBy Observation 4 this store answers ANY subspace skyline query\n"
      "over the union of the three peers' data. For example SKY_{X,Y}:\n");
  ResultList sky_xy =
      skypeer::SortedSkyline(store, skypeer::Subspace::FromDims({0, 1}));
  for (size_t i = 0; i < sky_xy.size(); ++i) {
    std::printf("  %s\n", names[sky_xy.points.id(i)].c_str());
  }
  return 0;
}
