// Compares the four SKYPEER strategies and the naive baseline on one
// medium-sized network, reporting the trade-offs of Table 2 as a small
// report: threshold propagation cuts traffic, progressive merging cuts
// both traffic and the merge bottleneck at the initiator.
//
//   $ ./variant_comparison [uniform|clustered]

#include <cstdio>
#include <cstring>

#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"

int main(int argc, char** argv) {
  using namespace skypeer;

  Distribution distribution = Distribution::kUniform;
  if (argc > 1 && std::strcmp(argv[1], "clustered") == 0) {
    distribution = Distribution::kClustered;
  }

  NetworkConfig config;
  config.num_peers = 1000;
  config.num_super_peers = 50;
  config.points_per_peer = 200;
  config.dims = 6;
  config.distribution = distribution;
  config.seed = 11;

  SkypeerNetwork network(config);
  network.Preprocess();
  std::printf("network: %d peers / %d super-peers, %zu %s points, d=%d\n\n",
              network.num_peers(), network.num_super_peers(),
              network.total_points(), DistributionName(distribution),
              network.dims());

  const auto tasks = GenerateWorkload(config.dims, /*query_dims=*/3,
                                      /*num_queries=*/25,
                                      network.num_super_peers(), /*seed=*/3);

  std::printf("%-6s | %12s | %10s | %12s | %9s\n", "strategy", "comp (ms)",
              "total (s)", "volume (KB)", "messages");
  std::printf("-------+--------------+------------+--------------+----------\n");
  double naive_total = 0.0;
  for (Variant variant : kAllVariants) {
    const AggregateMetrics agg = RunWorkload(&network, tasks, variant);
    if (variant == Variant::kNaive) {
      naive_total = agg.avg_total_s();
    }
    std::printf("%-6s | %12.3f | %10.2f | %12.1f | %9.1f\n",
                VariantName(variant), agg.avg_comp_s() * 1e3,
                agg.avg_total_s(), agg.avg_kb(), agg.avg_messages());
  }

  const AggregateMetrics best = RunWorkload(&network, tasks, Variant::kFTPM);
  std::printf("\nFTPM answers %.1fx faster than the naive baseline here.\n",
              naive_total / best.avg_total_s());
  return 0;
}
