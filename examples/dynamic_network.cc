// Churn demo: peers joining and failing while the network keeps
// answering subspace skyline queries exactly — the scenario the paper
// flags as future work (§7), built on the §5.3 incremental join.
//
//   $ ./dynamic_network

#include <cstdio>

#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"
#include "skypeer/engine/network_builder.h"

int main() {
  using namespace skypeer;

  NetworkConfig config;
  config.num_peers = 100;
  config.num_super_peers = 10;
  config.points_per_peer = 80;
  config.dims = 4;
  config.seed = 31;
  config.dynamic_membership = true;  // Super-peers retain peer lists.
  config.retain_peer_data = true;    // Keep ground truth for verification.

  SkypeerNetwork network(config);
  network.Preprocess();

  const Subspace u = Subspace::FromDims({0, 2});
  auto report = [&](const char* when) {
    const QueryResult result = network.ExecuteQuery(u, 0, Variant::kRTPM);
    const PointSet truth = network.GroundTruthSkyline(u);
    std::printf("%-28s %5zu points, skyline size %3zu (%s)\n", when,
                network.total_points(), result.skyline.size(),
                result.skyline.size() == truth.size() ? "exact" : "WRONG");
  };

  report("initial network:");

  // A burst of joins: 10 new peers attach to random super-peers.
  Rng rng(7);
  std::vector<int> joined;
  for (int i = 0; i < 10; ++i) {
    const int sp = static_cast<int>(rng.UniformInt(0, 9));
    PointSet data = GenerateUniform(4, 60, &rng);
    int peer_id = -1;
    const Status status = network.JoinPeer(sp, std::move(data), &peer_id);
    if (!status.ok()) {
      std::printf("join failed: %s\n", status.ToString().c_str());
      return 1;
    }
    joined.push_back(peer_id);
  }
  report("after 10 joins:");

  // Failures: half of the newcomers and a few original peers drop out.
  for (int i = 0; i < 5; ++i) {
    (void)network.RemovePeer(joined[i]);
  }
  for (int peer : {3, 17, 42}) {
    (void)network.RemovePeer(peer);
  }
  report("after 8 failures:");

  // A peer with an unbeatable offer (the origin) joins...
  PointSet bargain(4, {{0.0, 0.0, 0.0, 0.0}});
  int bargain_peer = -1;
  (void)network.JoinPeer(5, std::move(bargain), &bargain_peer);
  report("after the bargain joins:");
  const QueryResult dominated = network.ExecuteQuery(u, 0, Variant::kRTPM);
  std::printf("  -> the bargain dominates the previous skyline; the new "
              "one has %zu point(s), led by #%llu\n",
              dominated.skyline.size(),
              static_cast<unsigned long long>(
                  dominated.skyline.points.id(0)));

  // ... and fails. The previously dominated points resurface.
  (void)network.RemovePeer(bargain_peer);
  report("after the bargain fails:");

  std::printf("\nEvery intermediate state answered exactly; super-peers\n"
              "re-merged their stores from retained peer lists on failure\n"
              "and merged joiners incrementally.\n");
  return 0;
}
