// Explores the full SkyCube of a dataset — the skyline of *every*
// subspace — and demonstrates why SKYPEER's extended skyline is the right
// summary: computing each cuboid over the (much smaller) extended skyline
// yields identical results at a fraction of the work.
//
//   $ ./skycube_explorer

#include <chrono>
#include <cstdio>

#include "skypeer/algo/bnl.h"
#include "skypeer/algo/extended_skyline.h"
#include "skypeer/algo/skycube.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"

int main() {
  using namespace skypeer;
  using Clock = std::chrono::steady_clock;

  constexpr int kDims = 6;
  Rng rng(2026);
  // Discrete attributes (prices in steps, star ratings, ...) so the
  // extended skyline genuinely differs from the plain skyline.
  PointSet data(kDims);
  for (int i = 0; i < 20000; ++i) {
    double row[kDims];
    for (int d = 0; d < kDims; ++d) {
      row[d] = rng.UniformInt(0, 9) / 10.0;
    }
    data.Append(row, i);
  }

  const auto t0 = Clock::now();
  ResultList ext = ExtendedSkyline(data);
  const auto t1 = Clock::now();
  std::printf("dataset: %zu points, d=%d\n", data.size(), kDims);
  std::printf("extended skyline: %zu points (%.1f%%), computed in %.1f ms\n\n",
              ext.size(), 100.0 * ext.size() / data.size(),
              std::chrono::duration<double>(t1 - t0).count() * 1e3);

  // Every subspace skyline, computed over the full data and over the
  // extended skyline only.
  std::printf("%-12s | %8s | %14s | %13s\n", "subspace", "|SKY_U|",
              "full data (ms)", "ext only (ms)");
  std::printf("-------------+----------+----------------+--------------\n");
  double full_total = 0.0;
  double ext_total = 0.0;
  for (int k = 1; k <= kDims; ++k) {
    // One representative subspace per size: the first k dimensions.
    std::vector<int> dims;
    for (int d = 0; d < k; ++d) {
      dims.push_back(d);
    }
    const Subspace u = Subspace::FromDims(dims);

    const auto f0 = Clock::now();
    PointSet from_full = BnlSkyline(data, u);
    const auto f1 = Clock::now();
    PointSet from_ext = BnlSkyline(ext.points, u);
    const auto f2 = Clock::now();

    if (from_full.size() != from_ext.size()) {
      std::printf("MISMATCH on %s!\n", u.ToString().c_str());
      return 1;
    }
    const double full_ms = std::chrono::duration<double>(f1 - f0).count() * 1e3;
    const double ext_ms = std::chrono::duration<double>(f2 - f1).count() * 1e3;
    full_total += full_ms;
    ext_total += ext_ms;
    std::printf("%-12s | %8zu | %14.1f | %13.1f\n", u.ToString().c_str(),
                from_full.size(), full_ms, ext_ms);
  }
  std::printf("\nanswering over the extended skyline was %.1fx faster "
              "overall and always exact (Observation 4).\n",
              full_total / ext_total);

  // The full cube on a small sample, for the curious.
  PointSet sample(kDims);
  for (size_t i = 0; i < 500; ++i) {
    sample.AppendFrom(data, i);
  }
  SkyCube cube(sample);
  size_t total_cuboids = 0;
  size_t total_points = 0;
  for (Subspace u : AllSubspaces(kDims)) {
    ++total_cuboids;
    total_points += cube.Skyline(u).size();
  }
  std::printf("\nSkyCube of a 500-point sample: %zu cuboids, %zu skyline "
              "memberships, %zu distinct points in any cuboid.\n",
              total_cuboids, total_points,
              cube.UnionOfAllSkylines().size());
  return 0;
}
