// The paper's motivating scenario (§1): a global hotel reservation system
// of independent servers (super-peers) and travel agencies (peers), each
// advertising hotels. Users pose skyline queries over whatever criteria
// matter to them *this time* — subspace skylines.
//
// Attributes (all minimized): price, distance to beach, 5 - star rating,
// noise level, distance to city center.
//
//   $ ./hotel_search

#include <cstdio>
#include <string>
#include <vector>

#include "skypeer/common/rng.h"
#include "skypeer/engine/network_builder.h"

namespace {

constexpr int kDims = 5;
const char* kAttributeNames[kDims] = {"price", "beach_dist", "star_penalty",
                                      "noise", "center_dist"};

}  // namespace

int main() {
  using namespace skypeer;

  // 40 travel agencies under 8 regional servers; each agency lists 150
  // hotels. Hotels cluster per region (coastal regions have low beach
  // distance, city hotels low center distance, ...), which is exactly
  // the clustered workload of the paper's §6.
  NetworkConfig config;
  config.num_peers = 40;
  config.num_super_peers = 8;
  config.points_per_peer = 150;
  config.dims = kDims;
  config.distribution = Distribution::kClustered;
  config.seed = 7;

  SkypeerNetwork network(config);
  const PreprocessStats stats = network.Preprocess();
  std::printf(
      "universal hotel database: %zu hotels across %d agencies / %d "
      "servers\n",
      network.total_points(), network.num_peers(), network.num_super_peers());
  std::printf(
      "after pre-processing the servers retain %.1f%% of all listings\n\n",
      stats.sel_sp() * 100);

  struct UserQuery {
    const char* description;
    Subspace subspace;
  };
  const std::vector<UserQuery> queries = {
      {"budget beach trip (price, beach distance)",
       Subspace::FromDims({0, 1})},
      {"quiet luxury (star rating, noise)", Subspace::FromDims({2, 3})},
      {"city break on a budget (price, center distance)",
       Subspace::FromDims({0, 4})},
      {"everything matters", Subspace::FullSpace(kDims)},
  };

  for (const UserQuery& query : queries) {
    const QueryResult result =
        network.ExecuteQuery(query.subspace, /*initiator_sp=*/0,
                             Variant::kRTPM);
    std::printf("-- %s --\n", query.description);
    std::printf("   criteria:");
    for (int dim : query.subspace) {
      std::printf(" %s", kAttributeNames[dim]);
    }
    std::printf("\n   %zu non-dominated hotels; total response %.2f s, "
                "%.1f KB shipped\n",
                result.metrics.result_size, result.metrics.total_time_s,
                result.metrics.volume_kb());
    for (size_t i = 0; i < result.skyline.size() && i < 3; ++i) {
      std::printf("   hotel-%llu:", static_cast<unsigned long long>(
                                        result.skyline.points.id(i)));
      for (int dim : query.subspace) {
        std::printf(" %s=%.2f", kAttributeNames[dim],
                    result.skyline.points[i][dim]);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
