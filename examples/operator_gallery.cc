// A tour of every skyline-family operator in the library on one small
// hotel-style dataset: skyline, extended skyline, k-skyband, top-k
// dominating, constrained skyline, NN-skyline and the cluster-anchored
// index — all computing over the same points so their relationships are
// visible side by side.
//
//   $ ./operator_gallery

#include <cstdio>

#include "skypeer/algo/anchored_skyline.h"
#include "skypeer/algo/bnl.h"
#include "skypeer/algo/constrained.h"
#include "skypeer/algo/extended_skyline.h"
#include "skypeer/algo/nn_skyline.h"
#include "skypeer/algo/skyband.h"
#include "skypeer/algo/top_k_dominating.h"
#include "skypeer/common/rng.h"

int main() {
  using namespace skypeer;

  // Hotels: (price, distance) on a coarse grid so ties exist — the
  // regime where skyline subtleties show.
  Rng rng(99);
  PointSet hotels(2);
  for (int i = 0; i < 400; ++i) {
    double row[2] = {rng.UniformInt(0, 9) / 10.0,
                     rng.UniformInt(0, 9) / 10.0};
    hotels.Append(row, i);
  }
  const Subspace u = Subspace::FullSpace(2);
  std::printf("dataset: %zu hotels (price, distance), 10x10 grid\n\n",
              hotels.size());

  const PointSet skyline = BnlSkyline(hotels, u);
  std::printf("skyline:            %3zu hotels (no hotel cheaper AND "
              "closer)\n",
              skyline.size());

  const ResultList ext = ExtendedSkyline(hotels);
  std::printf("extended skyline:   %3zu hotels (additionally everything "
              "tying a winner;\n"
              "                        answers ANY subspace query "
              "losslessly)\n",
              ext.size());

  const PointSet band2 = KSkyband(hotels, u, 2);
  const PointSet band5 = KSkyband(hotels, u, 5);
  std::printf("2-skyband:          %3zu hotels (beaten by at most one)\n",
              band2.size());
  std::printf("5-skyband:          %3zu hotels (beaten by at most four)\n",
              band5.size());

  const auto top3 = TopKDominating(hotels, u, 3);
  std::printf("top-3 dominating:\n");
  for (const DominatingPoint& p : top3) {
    std::printf("                    hotel-%llu beats %zu others\n",
                static_cast<unsigned long long>(p.id), p.score);
  }

  RangeConstraint midrange;
  midrange.dims = Subspace::FromDims({0});
  midrange.lo = {0.3};
  midrange.hi = {0.6};
  const PointSet constrained = ConstrainedSkyline(hotels, u, midrange);
  std::printf("constrained:        %3zu hotels (best among price in "
              "[0.3, 0.6])\n",
              constrained.size());

  NnSkylineStats nn_stats;
  const PointSet nn = NnSkyline(hotels, u, &nn_stats);
  std::printf("NN-skyline:         %3zu hotels via %zu NN searches "
              "(progressive)\n",
              nn.size(), nn_stats.nn_queries);

  AnchoredSkylineIndex::Options anchored_options;
  anchored_options.num_anchors = 4;
  AnchoredSkylineIndex index(hotels, anchored_options);
  ThresholdScanStats anchored_stats;
  const PointSet anchored = index.Query(u, &anchored_stats);
  std::printf("anchored index:     %3zu hotels scanning %zu of %zu "
              "points\n",
              anchored.size(), anchored_stats.scanned, hotels.size());

  // All exact-skyline methods agree.
  if (skyline.size() != nn.size() || skyline.size() != anchored.size()) {
    std::printf("\nMISMATCH between exact methods!\n");
    return 1;
  }
  std::printf("\nskyline == NN-skyline == anchored query; every other "
              "operator is a\nsuperset (skybands, ext) or a re-ranking "
              "(top-k, constrained).\n");
  return 0;
}
