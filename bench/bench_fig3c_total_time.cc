// Figure 3(c): average total response time (including network delay over
// 4 KB/s connections) vs. data dimensionality, for all variants.
// Uniform data, 4000 peers, k = 3.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(20);

  std::printf("== Figure 3(c): total time (s) vs d, k=3, 4KB/s links ==\n");
  Table table({"d", "naive", "FTFM", "FTPM", "RTFM", "RTPM"});
  for (int d = 5; d <= 10; ++d) {
    NetworkConfig config;
    config.dims = d;
    config.seed = options.seed;
    SkypeerNetwork network = BuildNetwork(config, options);
    network.Preprocess();
    std::vector<std::string> row = {std::to_string(d)};
    for (Variant variant : kAllVariants) {
      const AggregateMetrics agg =
          RunVariant(&network, /*k=*/3, queries, options.seed + d, variant);
      row.push_back(Fmt(agg.avg_total_s(), 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
