// Micro-benchmarks (google-benchmark) of the batched dominance kernels
// against the one-point-at-a-time scalar baseline they replaced. Three
// configurations per operation:
//
//   Baseline  row-major loop over `Dominates` (the pre-blocked code path)
//   Scalar    blocked SoA kernels pinned to the scalar path
//   Dispatch  blocked SoA kernels with runtime dispatch (AVX2/NEON)
//
// The acceptance bar for the SIMD work is Dispatch >= 2x Baseline on
// `AnyDominates` for k <= 8 at window >= 256. Queries are taken near the
// origin so no window point dominates them: every call scans the full
// window, which is the worst case Algorithm 1 pays per accepted skyline
// point and the case the blocked kernels target.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "skypeer/common/dominance.h"
#include "skypeer/common/dominance_batch.h"
#include "skypeer/common/mapping.h"
#include "skypeer/common/rng.h"
#include "skypeer/common/subspace.h"

namespace skypeer {
namespace {

// Window coordinates in (0, 1]: strictly positive so an all-zero query is
// never dominated and `AnyDominates` cannot exit early.
std::vector<double> RandomRows(int k, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rows(n * static_cast<size_t>(k));
  for (double& v : rows) {
    v = 0.5 * rng.Uniform() + 0.5;
  }
  return rows;
}

BlockedProjection ToBlocked(const std::vector<double>& rows, int k) {
  BlockedProjection proj(k);
  const size_t n = rows.size() / static_cast<size_t>(k);
  proj.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    proj.Append(rows.data() + i * static_cast<size_t>(k));
  }
  return proj;
}

// RAII pin of the kernel dispatch mode for one benchmark run.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(bool force_scalar) {
    SetForceScalarKernels(force_scalar);
  }
  ~ScopedKernelMode() { SetForceScalarKernels(false); }
};

void BM_AnyDominates_Baseline(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  const std::vector<double> rows = RandomRows(k, n, 17);
  const std::vector<double> q(static_cast<size_t>(k), 0.0);
  const Subspace u = Subspace::FullSpace(k);
  for (auto _ : state) {
    bool any = false;
    for (size_t i = 0; i < n; ++i) {
      if (Dominates(rows.data() + i * static_cast<size_t>(k), q.data(), u)) {
        any = true;
        break;
      }
    }
    benchmark::DoNotOptimize(any);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

template <bool kForceScalar>
void BM_AnyDominates_Blocked(benchmark::State& state) {
  ScopedKernelMode mode(kForceScalar);
  const int k = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  const BlockedProjection proj = ToBlocked(RandomRows(k, n, 17), k);
  const std::vector<double> q(static_cast<size_t>(k), 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnyDominates(proj, q.data(), false));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_AnyDominates_Scalar(benchmark::State& state) {
  BM_AnyDominates_Blocked<true>(state);
}

void BM_AnyDominates_Dispatch(benchmark::State& state) {
  BM_AnyDominates_Blocked<false>(state);
}

void BM_DominatedMask_Baseline(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  const std::vector<double> rows = RandomRows(k, n, 23);
  const std::vector<double> p(static_cast<size_t>(k), 0.0);
  const Subspace u = Subspace::FullSpace(k);
  std::vector<uint8_t> flags(n);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      flags[i] = Dominates(p.data(), rows.data() + i * static_cast<size_t>(k),
                           u)
                     ? 1
                     : 0;
    }
    benchmark::DoNotOptimize(flags.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

template <bool kForceScalar>
void BM_DominatedMask_Blocked(benchmark::State& state) {
  ScopedKernelMode mode(kForceScalar);
  const int k = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  const BlockedProjection proj = ToBlocked(RandomRows(k, n, 23), k);
  const std::vector<double> p(static_cast<size_t>(k), 0.0);
  std::vector<uint8_t> masks(proj.num_blocks());
  for (auto _ : state) {
    DominatedMask(proj, p.data(), false, masks.data());
    benchmark::DoNotOptimize(masks.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_DominatedMask_Scalar(benchmark::State& state) {
  BM_DominatedMask_Blocked<true>(state);
}

void BM_DominatedMask_Dispatch(benchmark::State& state) {
  BM_DominatedMask_Blocked<false>(state);
}

void BM_MinCoord_Baseline(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  const std::vector<double> rows = RandomRows(dims, n, 29);
  std::vector<double> out(n);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = MinCoord(rows.data() + i * static_cast<size_t>(dims), dims);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

template <bool kForceScalar>
void BM_MinCoord_Blocked(benchmark::State& state) {
  ScopedKernelMode mode(kForceScalar);
  const int dims = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  const std::vector<double> rows = RandomRows(dims, n, 29);
  std::vector<double> out(n);
  for (auto _ : state) {
    BatchMinCoord(rows.data(), n, dims, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_MinCoord_Scalar(benchmark::State& state) {
  BM_MinCoord_Blocked<true>(state);
}

void BM_MinCoord_Dispatch(benchmark::State& state) {
  BM_MinCoord_Blocked<false>(state);
}

void KernelGrid(benchmark::internal::Benchmark* b) {
  for (int k : {1, 2, 3, 5, 8}) {
    for (int window : {64, 256, 1024, 4096}) {
      b->Args({k, window});
    }
  }
}

BENCHMARK(BM_AnyDominates_Baseline)->Apply(KernelGrid);
BENCHMARK(BM_AnyDominates_Scalar)->Apply(KernelGrid);
BENCHMARK(BM_AnyDominates_Dispatch)->Apply(KernelGrid);
BENCHMARK(BM_DominatedMask_Baseline)->Apply(KernelGrid);
BENCHMARK(BM_DominatedMask_Scalar)->Apply(KernelGrid);
BENCHMARK(BM_DominatedMask_Dispatch)->Apply(KernelGrid);
BENCHMARK(BM_MinCoord_Baseline)->Apply(KernelGrid);
BENCHMARK(BM_MinCoord_Scalar)->Apply(KernelGrid);
BENCHMARK(BM_MinCoord_Dispatch)->Apply(KernelGrid);

}  // namespace
}  // namespace skypeer

BENCHMARK_MAIN();
