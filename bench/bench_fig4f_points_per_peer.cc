// Figure 4(f): total response time as the number of points per peer grows
// from 250 to 1000 (1M to 4M points in total). Uniform data, 4000 peers,
// k = 3. Progressive merging pulls further ahead as data grows.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(10);

  std::printf("== Figure 4(f): total time (s) vs points per peer, k=3 ==\n");
  Table table({"points/peer", "naive", "FTFM", "FTPM", "RTFM", "RTPM"});
  for (int ppp : {250, 500, 1000}) {
    NetworkConfig config;
    config.points_per_peer = ppp;
    config.seed = options.seed;
    SkypeerNetwork network = BuildNetwork(config, options);
    network.Preprocess();
    std::vector<std::string> row = {std::to_string(ppp)};
    for (Variant variant : kAllVariants) {
      const AggregateMetrics agg =
          RunVariant(&network, /*k=*/3, queries, options.seed + ppp, variant);
      row.push_back(Fmt(agg.avg_total_s(), 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
