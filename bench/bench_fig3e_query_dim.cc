// Figure 3(e): computational time vs. query dimensionality k = 2..4 for
// the fixed (FTFM) against the refined (RTFM) threshold variant.
// Uniform data, 12000 peers.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(10);

  std::printf("== Figure 3(e): computational time (ms) vs k, 12000 peers ==\n");
  NetworkConfig config;
  config.num_peers = 12000;
  config.seed = options.seed;
  SkypeerNetwork network = BuildNetwork(config, options);
  network.Preprocess();

  Table table({"k", "FTFM", "RTFM"});
  for (int k = 2; k <= 4; ++k) {
    std::vector<std::string> row = {std::to_string(k)};
    for (Variant variant : {Variant::kFTFM, Variant::kRTFM}) {
      const AggregateMetrics agg =
          RunVariant(&network, k, queries, options.seed + k, variant);
      row.push_back(FmtMs(agg.avg_comp_s()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
