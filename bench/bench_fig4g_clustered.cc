// Figure 4(g): SKYPEER vs. naive on a clustered 3-dimensional dataset
// with k = 3 (global skyline queries, so the clustered distribution is
// not distorted by projection). Reports both computational and total
// time. On clustered data the refined-threshold variants shine on total
// time while fixed-threshold stays ahead on computational time.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(20);

  std::printf("== Figure 4(g): clustered data, d=3, k=3 ==\n");
  NetworkConfig config;
  config.dims = 3;
  config.distribution = Distribution::kClustered;
  config.seed = options.seed;
  SkypeerNetwork network = BuildNetwork(config, options);
  network.Preprocess();

  Table table({"variant", "comp (ms)", "total (s)", "volume (KB)"});
  for (Variant variant : kAllVariants) {
    const AggregateMetrics agg =
        RunVariant(&network, /*k=*/3, queries, options.seed + 77, variant);
    table.AddRow({VariantName(variant), FmtMs(agg.avg_comp_s()),
                  Fmt(agg.avg_total_s(), 2), Fmt(agg.avg_kb(), 1)});
  }
  table.Print();
  return 0;
}
