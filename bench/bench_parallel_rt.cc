// Wall-clock scaling of speculative staged execution for the
// refined-threshold variants (RTFM, RTPM) and the pipeline on the
// largest-store configuration: few super-peers, each holding a large
// anticorrelated 8-d store, so the per-query cost is dominated by the
// local threshold scans that `--speculative-rt` runs concurrently.
//
// Every cell is identity-checked: the speculative run must reproduce the
// sequential skylines and simulated metrics (measure_cpu=false)
// bit-for-bit; the table's last column flags any mismatch.

#include <chrono>
#include <thread>

#include "bench/bench_util.h"

namespace {

using namespace skypeer;

struct QueryOutcome {
  ResultList skyline{1};
  QueryMetrics metrics;
};

bool SameList(const ResultList& a, const ResultList& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.points.id(i) != b.points.id(i) || a.f[i] != b.f[i]) {
      return false;
    }
    for (int d = 0; d < a.points.dims(); ++d) {
      if (a.points[i][d] != b.points[i][d]) {
        return false;
      }
    }
  }
  return true;
}

bool SameMetrics(const QueryMetrics& a, const QueryMetrics& b) {
  return a.computational_time_s == b.computational_time_s &&
         a.total_time_s == b.total_time_s &&
         a.bytes_transferred == b.bytes_transferred &&
         a.messages == b.messages && a.result_size == b.result_size &&
         a.store_points_scanned == b.store_points_scanned &&
         a.local_result_points == b.local_result_points;
}

/// Runs every task once, capturing per-task outcomes; returns the median
/// wall time over `repeats` passes.
double MedianBatchSeconds(SkypeerNetwork* network,
                          const std::vector<QueryTask>& tasks, Variant variant,
                          int repeats, std::vector<QueryOutcome>* outcomes) {
  std::vector<double> times;
  times.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<QueryOutcome> pass;
    pass.reserve(tasks.size());
    for (const QueryTask& task : tasks) {
      QueryResult result =
          network->ExecuteQuery(task.subspace, task.initiator_sp, variant);
      pass.push_back({std::move(result.skyline), result.metrics});
    }
    times.push_back(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count());
    *outcomes = std::move(pass);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int repeats = options.QueriesOr(3, 7);
  constexpr int kQueryDims = 5;

  NetworkConfig config;
  config.num_peers = options.full ? 400 : 240;
  config.num_super_peers = 8;
  config.points_per_peer = options.full ? 2500 : 1200;
  config.dims = 8;
  config.distribution = Distribution::kAnticorrelated;
  config.seed = options.seed;
  // Simulated metrics must be bit-comparable across thread counts.
  config.measure_cpu = false;
  // At 1 thread the speculative wave is skipped, so the same network
  // serves as its own sequential baseline.
  config.speculative_rt = true;

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("== Speculative staged RT*M / pipeline, largest-store config ==\n");
  std::printf("# k=%d, %d queries per pass, median of %d passes\n", kQueryDims,
              4, repeats);
  std::printf("# host cores: %u — thread counts above this measure overhead "
              "only, not speedup\n", cores);
  SkypeerNetwork network = BuildNetwork(config, options);
  const PreprocessStats stats = network.Preprocess();
  std::printf("# store points per super-peer ~%zu (SEL_sp=%.1f%%)\n",
              stats.super_peer_ext_points /
                  static_cast<size_t>(network.num_super_peers()),
              stats.sel_sp() * 100);

  const auto tasks =
      GenerateWorkload(config.dims, kQueryDims, 4, network.num_super_peers(),
                       options.seed + 99);

  Table table({"variant", "threads", "seq (ms)", "spec (ms)", "speedup",
               "identical"});
  for (Variant variant :
       {Variant::kRTFM, Variant::kRTPM, Variant::kPipeline}) {
    ThreadPool::SetGlobalConcurrency(1);
    std::vector<QueryOutcome> reference;
    const double seq_s =
        MedianBatchSeconds(&network, tasks, variant, repeats, &reference);

    for (int threads : {1, 2, 4, 8}) {
      ThreadPool::SetGlobalConcurrency(threads);
      std::vector<QueryOutcome> outcomes;
      const double spec_s =
          MedianBatchSeconds(&network, tasks, variant, repeats, &outcomes);
      bool identical = outcomes.size() == reference.size();
      for (size_t t = 0; identical && t < reference.size(); ++t) {
        identical = SameList(outcomes[t].skyline, reference[t].skyline) &&
                    SameMetrics(outcomes[t].metrics, reference[t].metrics);
      }
      table.AddRow({VariantName(variant), std::to_string(threads),
                    FmtMs(seq_s), FmtMs(spec_s), Fmt(seq_s / spec_s, 2) + "x",
                    identical ? "yes" : "NO"});
    }
  }
  ThreadPool::SetGlobalConcurrency(1);
  table.Print();
  return 0;
}
