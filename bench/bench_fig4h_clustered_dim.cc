// Figure 4(h): clustered datasets of increasing dimensionality — the
// refined-threshold variants (RT*M) gain importance as d grows when data
// is clustered. Global skyline queries (k = d), 4000 peers.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(15);

  std::printf("== Figure 4(h): clustered data, total time (s) vs d ==\n");
  Table table({"d", "naive", "FTFM", "FTPM", "RTFM", "RTPM"});
  for (int d = 3; d <= 6; ++d) {
    NetworkConfig config;
    config.dims = d;
    config.distribution = Distribution::kClustered;
    config.seed = options.seed;
    SkypeerNetwork network = BuildNetwork(config, options);
    network.Preprocess();
    std::vector<std::string> row = {std::to_string(d)};
    for (Variant variant : kAllVariants) {
      const AggregateMetrics agg =
          RunVariant(&network, /*k=*/d, queries, options.seed + d, variant);
      row.push_back(Fmt(agg.avg_total_s(), 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
