// bench_filter_volume — the headline experiment of the sampled
// filter-point broadcast (EXPERIMENTS §A13): sweep the broadcast filter
// set size on anti-correlated data (where extended skylines, and thus
// ext-SKY shipping volume, are large) and report transferred volume and
// simulated total time per threshold variant. Size 0 is the unfiltered
// baseline; the answer skylines are bit-identical at every size, so any
// volume delta is pure communication savings. Deterministic under
// `--cost-model calibrated|unit`.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(8, 40);

  static const size_t kFilterSizes[] = {0, 4, 8, 16, 32, 64};
  static const Variant kSweepVariants[] = {Variant::kFTFM, Variant::kFTPM,
                                           Variant::kRTFM, Variant::kRTPM};

  NetworkConfig base;
  base.num_peers = options.full ? 2000 : 400;
  base.num_super_peers = options.full ? 0 : 10;
  base.points_per_peer = options.full ? 250 : 100;
  base.dims = 6;
  base.distribution = Distribution::kAnticorrelated;
  base.seed = options.seed;

  std::printf("== filter-set sweep: volume (KB) vs filter size, anti d=%d ==\n",
              base.dims);
  Table volume({"filter", "FTFM kb", "FTPM kb", "RTFM kb", "RTPM kb"});
  Table time({"filter", "FTFM total_ms", "FTPM total_ms", "RTFM total_ms",
              "RTPM total_ms"});
  double baseline_kb[4] = {0, 0, 0, 0};
  double best_kb[4] = {0, 0, 0, 0};
  for (size_t size : kFilterSizes) {
    BenchOptions cell = options;
    cell.filter_set = size;
    SkypeerNetwork network = BuildNetwork(base, cell);
    network.Preprocess();
    std::vector<std::string> volume_row = {std::to_string(size)};
    std::vector<std::string> time_row = {std::to_string(size)};
    for (size_t v = 0; v < 4; ++v) {
      // Same workload seed at every filter size: the sweep compares the
      // identical query batch, so volume deltas are the filter's alone.
      const AggregateMetrics agg = RunVariant(&network, /*k=*/3, queries,
                                              options.seed + 17,
                                              kSweepVariants[v]);
      volume_row.push_back(Fmt(agg.avg_kb(), 2));
      time_row.push_back(FmtMs(agg.avg_total_s()));
      if (size == 0) {
        baseline_kb[v] = agg.avg_kb();
        best_kb[v] = agg.avg_kb();
      } else if (agg.avg_kb() < best_kb[v]) {
        best_kb[v] = agg.avg_kb();
      }
    }
    volume.AddRow(std::move(volume_row));
    time.AddRow(std::move(time_row));
  }
  volume.Print();
  std::printf("\n== filter-set sweep: avg total time (ms) ==\n");
  time.Print();

  std::printf("\n== best volume reduction vs unfiltered ==\n");
  Table summary({"variant", "baseline kb", "best kb", "reduction"});
  for (size_t v = 0; v < 4; ++v) {
    const double reduction =
        baseline_kb[v] > 0.0 ? (1.0 - best_kb[v] / baseline_kb[v]) * 100.0
                             : 0.0;
    summary.AddRow({VariantName(kSweepVariants[v]), Fmt(baseline_kb[v], 2),
                    Fmt(best_kb[v], 2), Fmt(reduction, 1) + "%"});
  }
  summary.Print();
  return 0;
}
