// Fault recovery (§A11): cost of the reliable protocol under injected
// faults. Two sweeps on one network:
//   1. message loss — response time and traffic overhead the
//      retransmission machinery pays to keep the answer bit-identical to
//      the fault-free run;
//   2. crashed super-peers — coverage and partial-result rate of the
//      graceful degradation path (reroute around dead nodes, answer with
//      the reachable stores).
// All runs use the virtual clock only (no measured CPU), so every number
// is bit-reproducible per seed.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(20);

  NetworkConfig base;
  base.num_peers = 2000;
  base.num_super_peers = 100;
  base.dims = 8;
  base.seed = options.seed;
  base.measure_cpu = false;
  base.scan_chunk_size = options.scan_chunk;
  base.speculative_rt = options.speculative_rt;
  base.reliable = true;

  std::printf("== Fault recovery: reliable protocol under injected faults "
              "==\n");

  std::printf("\n-- message loss sweep (FTPM, %d queries) --\n", queries);
  Table loss_table({"drop prob", "total (s)", "volume (KB)", "retrans/query",
                    "coverage", "partial"});
  double baseline_s = 0.0;
  double baseline_kb = 0.0;
  for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    NetworkConfig config = base;
    config.drop_prob = drop;
    SkypeerNetwork network(config);
    network.Preprocess();
    const auto tasks = GenerateWorkload(config.dims, 3, queries,
                                        network.num_super_peers(),
                                        options.seed + 7);
    const AggregateMetrics agg = RunWorkload(&network, tasks, Variant::kFTPM);
    if (drop == 0.0) {
      baseline_s = agg.avg_total_s();
      baseline_kb = agg.avg_kb();
    }
    loss_table.AddRow(
        {Fmt(drop, 2),
         Fmt(agg.avg_total_s(), 2) + " (" +
             Fmt(agg.avg_total_s() / baseline_s, 2) + "x)",
         Fmt(agg.avg_kb(), 1) + " (" + Fmt(agg.avg_kb() / baseline_kb, 2) +
             "x)",
         Fmt(agg.avg_retransmits(), 1), Fmt(agg.avg_coverage() * 100, 1) + "%",
         std::to_string(agg.partial_queries) + "/" +
             std::to_string(agg.queries)});
  }
  loss_table.Print();

  std::printf("\n-- crashed super-peer sweep (all variants, %d queries, "
              "max 2 retries) --\n",
              queries);
  Table crash_table({"variant", "crashed", "total (s)", "coverage",
                     "partial", "gave-up hops/query"});
  for (Variant variant : {Variant::kFTFM, Variant::kFTPM, Variant::kRTPM,
                          Variant::kPipeline}) {
    for (const int crashes : {0, 1, 3}) {
      NetworkConfig config = base;
      config.max_retries = 2;
      for (int c = 0; c < crashes; ++c) {
        // Spread the crashed nodes over the backbone; never crash node 0
        // so the workload's initiators stay alive more often than not.
        config.crashed_sps.push_back(17 + 31 * c);
      }
      SkypeerNetwork network(config);
      network.Preprocess();
      const auto tasks = GenerateWorkload(config.dims, 3, queries,
                                          network.num_super_peers(),
                                          options.seed + 7);
      const AggregateMetrics agg = RunWorkload(&network, tasks, variant);
      crash_table.AddRow(
          {VariantName(variant), std::to_string(crashes),
           Fmt(agg.avg_total_s(), 2), Fmt(agg.avg_coverage() * 100, 1) + "%",
           std::to_string(agg.partial_queries) + "/" +
               std::to_string(agg.queries),
           Fmt(agg.avg_gave_up(), 2)});
    }
  }
  crash_table.Print();
  return 0;
}
