// Ablation: the R-tree dominance index of Algorithm 1 (§5.2.1) versus a
// linear scan over the running skyline window. The R-tree pays off once
// the running skyline is large (high k / large stores); linear wins for
// small windows.

#include <chrono>

#include "bench/bench_util.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int repeats = options.QueriesOr(5, 20);

  std::printf(
      "== Ablation: Algorithm 1 dominance test, R-tree vs linear scan ==\n");
  Table table({"n", "k", "skyline", "rtree (ms)", "linear (ms)", "speedup"});
  Rng rng(options.seed);
  for (size_t n : {size_t{1000}, size_t{10000}, size_t{100000}}) {
    PointSet data = GenerateUniform(8, n, &rng);
    ResultList sorted = BuildSortedByF(data);
    for (int k : {2, 4, 6}) {
      std::vector<int> dims(k);
      for (int i = 0; i < k; ++i) {
        dims[i] = i;
      }
      const Subspace u = Subspace::FromDims(dims);
      double elapsed[2] = {0.0, 0.0};
      size_t skyline_size = 0;
      for (int variant = 0; variant < 2; ++variant) {
        ThresholdScanOptions scan;
        scan.use_rtree = variant == 0;
        const auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < repeats; ++r) {
          // --scan-chunk > 0 measures the chunked parallel scan instead.
          ResultList result =
              ParallelSortedSkyline(sorted, u, options.scan_chunk, scan);
          skyline_size = result.size();
        }
        elapsed[variant] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count() /
            repeats;
      }
      table.AddRow({std::to_string(n), std::to_string(k),
                    std::to_string(skyline_size), FmtMs(elapsed[0]),
                    FmtMs(elapsed[1]),
                    Fmt(elapsed[1] / elapsed[0], 2) + "x"});
    }
  }
  table.Print();
  return 0;
}
