// Figure 3(d): average volume of transferred data (KB) vs. data
// dimensionality, comparing fixed (FTFM) against progressive (FTPM)
// merging for query dimensionality k = 2 and k = 3. Uniform data, 4000
// peers.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(20);

  std::printf("== Figure 3(d): transferred volume (KB) vs d ==\n");
  Table table({"d", "FTFM k=2", "FTPM k=2", "FTFM k=3", "FTPM k=3"});
  for (int d = 5; d <= 10; ++d) {
    NetworkConfig config;
    config.dims = d;
    config.seed = options.seed;
    SkypeerNetwork network = BuildNetwork(config, options);
    network.Preprocess();
    std::vector<std::string> row = {std::to_string(d)};
    for (int k : {2, 3}) {
      for (Variant variant : {Variant::kFTFM, Variant::kFTPM}) {
        const AggregateMetrics agg =
            RunVariant(&network, k, queries, options.seed + d + 100 * k,
                       variant);
        row.push_back(Fmt(agg.avg_kb(), 1));
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
