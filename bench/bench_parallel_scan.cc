// Wall-clock scaling of the chunked parallel threshold scan
// (`ParallelSortedSkyline`) on the largest store configuration: an
// anticorrelated 8-d store the size a super-peer holds in the
// 80000-peer setup. Verifies the result is bit-identical to the
// sequential Algorithm 1 scan at every thread count, then reports
// speedup over the sequential scan for 1, 2, 4 and 8 threads.

#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"

namespace {

using namespace skypeer;

double MedianScanSeconds(const ResultList& sorted, Subspace u,
                         size_t chunk_size, int repeats,
                         ResultList* out_result) {
  std::vector<double> times;
  times.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    ResultList result = ParallelSortedSkyline(sorted, u, chunk_size);
    times.push_back(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count());
    if (out_result != nullptr) {
      *out_result = std::move(result);
    }
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

bool SameList(const ResultList& a, const ResultList& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.points.id(i) != b.points.id(i) || a.f[i] != b.f[i]) {
      return false;
    }
    for (int d = 0; d < a.points.dims(); ++d) {
      if (a.points[i][d] != b.points[i][d]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int repeats = options.QueriesOr(5, 15);
  const size_t n = options.full ? size_t{400000} : size_t{200000};
  // A few large chunks beat many small ones: each chunk re-discovers part
  // of the running skyline, so chunk count should track thread count, not
  // cache sizes (n/32768 ~ 6-12 chunks here).
  const size_t chunk = options.scan_chunk > 0 ? options.scan_chunk : 32768;
  constexpr int kDims = 8;

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("== Chunked parallel threshold scan, largest-store config ==\n");
  std::printf("# n=%zu d=%d anticorrelated, chunk=%zu, median of %d runs\n", n,
              kDims, chunk, repeats);
  std::printf("# host cores: %u — thread counts above this measure overhead "
              "only, not speedup\n", cores);

  Rng rng(options.seed);
  PointSet data = GenerateAnticorrelated(kDims, n, &rng);
  const ResultList sorted = BuildSortedByF(data);

  Table table({"k", "threads", "seq (ms)", "chunked (ms)", "speedup",
               "identical"});
  for (int k : {3, 5}) {
    std::vector<int> dims(k);
    for (int i = 0; i < k; ++i) {
      dims[i] = i;
    }
    const Subspace u = Subspace::FromDims(dims);

    ThreadPool::SetGlobalConcurrency(1);
    ResultList reference(kDims);
    const double seq_s =
        MedianScanSeconds(sorted, u, /*chunk_size=*/0, repeats, &reference);

    for (int threads : {1, 2, 4, 8}) {
      ThreadPool::SetGlobalConcurrency(threads);
      ResultList chunked(kDims);
      const double par_s =
          MedianScanSeconds(sorted, u, chunk, repeats, &chunked);
      table.AddRow({std::to_string(k), std::to_string(threads), FmtMs(seq_s),
                    FmtMs(par_s), Fmt(seq_s / par_s, 2) + "x",
                    SameList(reference, chunked) ? "yes" : "NO"});
    }
  }
  ThreadPool::SetGlobalConcurrency(1);
  table.Print();
  return 0;
}
