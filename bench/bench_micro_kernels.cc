// Micro-benchmarks (google-benchmark) of the computational kernels under
// the SKYPEER protocol: dominance tests, R-tree operations, the
// centralized skyline algorithms, Algorithm 1's threshold scan and
// Algorithm 2's merge.

#include <benchmark/benchmark.h>

#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/algo/divide_conquer.h"
#include "skypeer/algo/extended_skyline.h"
#include "skypeer/algo/merge.h"
#include "skypeer/algo/sfs.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/dominance.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"
#include "skypeer/algo/anchored_skyline.h"
#include "skypeer/algo/skyband.h"
#include "skypeer/btree/bplus_tree.h"
#include "skypeer/rtree/rtree.h"

namespace skypeer {
namespace {

PointSet UniformData(int dims, size_t n, uint64_t seed) {
  Rng rng(seed);
  return GenerateUniform(dims, n, &rng);
}

void BM_Dominates(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  PointSet data = UniformData(dims, 1024, 1);
  const Subspace u = Subspace::FullSpace(dims);
  size_t i = 0;
  for (auto _ : state) {
    const size_t a = i % data.size();
    const size_t b = (i * 7 + 1) % data.size();
    benchmark::DoNotOptimize(Dominates(data[a], data[b], u));
    ++i;
  }
}
BENCHMARK(BM_Dominates)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ExtDominates(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  PointSet data = UniformData(dims, 1024, 2);
  const Subspace u = Subspace::FullSpace(dims);
  size_t i = 0;
  for (auto _ : state) {
    const size_t a = i % data.size();
    const size_t b = (i * 7 + 1) % data.size();
    benchmark::DoNotOptimize(ExtDominates(data[a], data[b], u));
    ++i;
  }
}
BENCHMARK(BM_ExtDominates)->Arg(2)->Arg(8);

void BM_RTreeInsert(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  PointSet data = UniformData(dims, 10000, 3);
  for (auto _ : state) {
    RTree tree(dims);
    for (size_t i = 0; i < data.size(); ++i) {
      tree.Insert(data[i], i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_RTreeInsert)->Arg(2)->Arg(3)->Arg(5);

void BM_RTreeAnyDominates(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  PointSet data = UniformData(dims, 10000, 4);
  RTree tree(dims);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(data[i], i);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.AnyDominates(data[i % data.size()]));
    ++i;
  }
}
BENCHMARK(BM_RTreeAnyDominates)->Arg(2)->Arg(3)->Arg(5);

void BM_SkylineBnl(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PointSet data = UniformData(5, n, 5);
  const Subspace u = Subspace::FullSpace(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BnlSkyline(data, u));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SkylineBnl)->Arg(1000)->Arg(10000);

void BM_SkylineSfs(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PointSet data = UniformData(5, n, 6);
  const Subspace u = Subspace::FullSpace(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SfsSkyline(data, u));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SkylineSfs)->Arg(1000)->Arg(10000);

void BM_SkylineDivideConquer(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PointSet data = UniformData(5, n, 7);
  const Subspace u = Subspace::FullSpace(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DivideConquerSkyline(data, u));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SkylineDivideConquer)->Arg(1000)->Arg(10000);

void BM_SortedSkylineScan(benchmark::State& state) {
  // Algorithm 1 on an f-sorted list, subspace query k=3 out of d=8 — the
  // super-peer's query-time kernel.
  const size_t n = static_cast<size_t>(state.range(0));
  PointSet data = UniformData(8, n, 8);
  ResultList sorted = BuildSortedByF(data);
  const Subspace u = Subspace::FromDims({0, 3, 6});
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedSkyline(sorted, u));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SortedSkylineScan)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ParallelSortedSkylineScan(benchmark::State& state) {
  // Chunked parallel form of Algorithm 1 on the global pool:
  // range(0) = input size, range(1) = chunk size (0 = sequential).
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t chunk = static_cast<size_t>(state.range(1));
  PointSet data = UniformData(8, n, 8);
  ResultList sorted = BuildSortedByF(data);
  const Subspace u = Subspace::FromDims({0, 3, 6});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParallelSortedSkyline(sorted, u, chunk));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelSortedSkylineScan)
    ->Args({100000, 0})
    ->Args({100000, 16384})
    ->Args({100000, 32768})
    ->UseRealTime();

void BM_ExtendedSkyline(benchmark::State& state) {
  // The peer-side pre-processing kernel.
  const size_t n = static_cast<size_t>(state.range(0));
  PointSet data = UniformData(8, n, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtendedSkyline(data));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExtendedSkyline)->Arg(250)->Arg(1000)->Arg(10000);

void BM_MergeSortedSkylines(benchmark::State& state) {
  // Algorithm 2 over `lists` f-sorted lists — the merging kernel of both
  // the initiator and progressive merging.
  const int lists = static_cast<int>(state.range(0));
  std::vector<ResultList> inputs;
  for (int l = 0; l < lists; ++l) {
    PointSet data = UniformData(8, 2000, 10 + l);
    inputs.push_back(BuildSortedByF(data));
  }
  const Subspace u = Subspace::FromDims({1, 4, 7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeSortedSkylines(inputs, u));
  }
}
BENCHMARK(BM_MergeSortedSkylines)->Arg(2)->Arg(8)->Arg(32);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PointSet data = UniformData(3, n, 11);
  std::vector<uint64_t> payloads(n);
  for (size_t i = 0; i < n; ++i) {
    payloads[i] = i;
  }
  for (auto _ : state) {
    RTree tree = RTree::BulkLoad(3, data.values().data(), payloads.data(), n);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BPlusTreeInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(12);
  std::vector<double> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = rng.Uniform();
  }
  for (auto _ : state) {
    BPlusTree tree;
    for (size_t i = 0; i < n; ++i) {
      tree.Insert(keys[i], i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BPlusTreeScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(13);
  BPlusTree tree;
  for (size_t i = 0; i < n; ++i) {
    tree.Insert(rng.Uniform(), i);
  }
  for (auto _ : state) {
    uint64_t checksum = 0;
    for (BPlusTree::Cursor cursor = tree.Begin(); cursor.Valid();
         cursor.Next()) {
      checksum += cursor.payload();
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BPlusTreeScan)->Arg(10000)->Arg(100000);

void BM_KSkyband(benchmark::State& state) {
  const int band = static_cast<int>(state.range(0));
  PointSet data = UniformData(4, 2000, 14);
  const Subspace u = Subspace::FullSpace(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KSkyband(data, u, band));
  }
}
BENCHMARK(BM_KSkyband)->Arg(1)->Arg(2)->Arg(8);

void BM_AnchoredQuery(benchmark::State& state) {
  const int anchors = static_cast<int>(state.range(0));
  PointSet data = UniformData(6, 20000, 15);
  AnchoredSkylineIndex::Options options;
  options.num_anchors = anchors;
  AnchoredSkylineIndex index(data, options);
  const Subspace u = Subspace::FromDims({0, 2, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Query(u));
  }
}
BENCHMARK(BM_AnchoredQuery)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace skypeer

BENCHMARK_MAIN();
