// Ablation: SKYPEER's flood-tree strategies vs. a pipelined Euler-tour
// walk (the Wu et al., EDBT'06 style the paper cites in §2). The walk
// ships tiny merged results per hop (low volume) but is fully serial
// (~2 N_sp sequential transfers), so its total time degrades with the
// backbone size while FTPM's stays flat.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(10);

  std::printf(
      "== Ablation: flood-tree (FTPM/RTPM) vs pipelined walk (PIPE) ==\n");
  Table table({"N_p", "variant", "comp (ms)", "total (s)", "volume (KB)",
               "messages"});
  for (int num_peers : {1000, 4000, 12000}) {
    NetworkConfig config;
    config.num_peers = num_peers;
    config.seed = options.seed;
    SkypeerNetwork network = BuildNetwork(config, options);
    network.Preprocess();
    for (Variant variant :
         {Variant::kFTPM, Variant::kRTPM, Variant::kPipeline}) {
      const AggregateMetrics agg = RunVariant(
          &network, /*k=*/3, queries, options.seed + num_peers, variant);
      table.AddRow({std::to_string(num_peers), VariantName(variant),
                    FmtMs(agg.avg_comp_s()), Fmt(agg.avg_total_s(), 2),
                    Fmt(agg.avg_kb(), 1), Fmt(agg.avg_messages(), 0)});
    }
  }
  table.Print();
  return 0;
}
