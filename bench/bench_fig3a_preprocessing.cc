// Figure 3(a): pre-processing selectivity vs. data dimensionality.
// Uniform data over 4000 peers; reports SEL_p (fraction of points shipped
// peer -> super-peer), SEL_sp (fraction stored after super-peer merging)
// and their ratio, for d = 5..10.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);

  std::printf("== Figure 3(a): pre-processing selectivity vs d ==\n");
  Table table({"d", "SEL_p %", "SEL_sp %", "SEL_sp/SEL_p %", "peer cpu s",
               "sp cpu s"});
  for (int d = 5; d <= 10; ++d) {
    NetworkConfig config;
    config.dims = d;
    config.seed = options.seed;
    SkypeerNetwork network = BuildNetwork(config, options);
    const PreprocessStats stats = network.Preprocess();
    table.AddRow({std::to_string(d), Fmt(stats.sel_p() * 100, 1),
                  Fmt(stats.sel_sp() * 100, 1),
                  Fmt(stats.sel_ratio() * 100, 1), Fmt(stats.peer_cpu_s, 2),
                  Fmt(stats.super_peer_cpu_s, 2)});
  }
  table.Print();
  return 0;
}
