// Churn under fire (§A16): what membership maintenance costs, and what
// queries look like while it happens. Two sweeps:
//   1. maintenance cost — the same seeded join/leave/replace history is
//      applied once with incremental maintenance (drop the departing
//      peer's points, re-merge only resurrection candidates) and once
//      with the full store rebuild it replaces; reported as op counts
//      and calibrated milliseconds per event, by event kind.
//   2. availability — a scheduled churn plan executes *while* a query
//      workload runs, composed with crashed super-peers under the
//      reliable transport; reported as coverage, partial-result rate and
//      per-query times for incremental vs rebuild maintenance.
// Maintenance work is charged in counted operations, so sweep 1 is
// bit-reproducible per seed in every cost mode; sweep 2 measures CPU
// only under a counted cost model (--cost-model calibrated|unit), where
// every number is deterministic.
//
//   ./bench_churn [--churn-events N] [--churn-rate R] [--churn-seed S]
//                 [--queries N] [--seed S] [--json PATH] [--full]

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "skypeer/sim/churn_plan.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(20);
  const int history_events =
      options.churn_events > 0 ? options.churn_events : (options.full ? 200 : 48);
  const uint64_t churn_seed =
      options.churn_seed != 0 ? options.churn_seed : options.seed + 13;

  NetworkConfig base;
  base.num_peers = 400;
  base.num_super_peers = 20;
  base.points_per_peer = 50;
  base.dims = 6;
  base.seed = options.seed;
  base.dynamic_membership = true;
  base.scan_chunk_size = options.scan_chunk;
  base.speculative_rt = options.speculative_rt;
  base.filter_set_size = options.filter_set;
  base.block_skip = options.block_skip;
  base.page_size = options.page_size;
  base.buffer_pages = options.buffer_pages;
  base.cost_model = options.cost_model;
  // Virtual clocks unless the cost model is counted: maintenance charges
  // only reach the time metrics deterministically.
  base.measure_cpu = options.cost_model.counted();

  std::printf("== Churn: maintenance cost and availability under fire ==\n");

  // -- sweep 1: incremental vs rebuild maintenance cost ------------------
  std::printf("\n-- maintenance cost (%d seeded events, by kind) --\n",
              history_events);
  const sim::ChurnPlan history = sim::ChurnPlan::Seeded(
      history_events, options.churn_rate, churn_seed,
      /*num_slots=*/history_events, base.num_super_peers);
  const CostModel pricing = CostModel::Calibrated();

  struct KindCost {
    uint64_t events = 0;
    OpCounts ops;
  };
  // [maintenance mode][event kind]: 0 incremental, 1 rebuild.
  KindCost costs[2][3];
  OpCounts mode_total[2];
  for (int mode = 0; mode < 2; ++mode) {
    NetworkConfig config = base;
    config.incremental_maintenance = mode == 0;
    SkypeerNetwork network(config);
    network.Preprocess();
    for (const sim::ChurnEvent& event : history.events) {
      OpCounts ops;
      const Status status = network.ApplyChurnEvent(event, &ops);
      SKYPEER_CHECK(status.ok());
      KindCost& cost = costs[mode][static_cast<int>(event.kind)];
      ++cost.events;
      cost.ops += ops;
      mode_total[mode] += ops;
    }
  }

  Table cost_table({"kind", "events", "incremental ops/ev",
                    "rebuild ops/ev", "incr (ms/ev)", "rebuild (ms/ev)",
                    "speedup"});
  const char* kind_names[3] = {"join", "remove", "replace"};
  for (int kind = 0; kind < 3; ++kind) {
    const KindCost& incr = costs[0][kind];
    const KindCost& rebuild = costs[1][kind];
    if (incr.events == 0) {
      continue;
    }
    const double incr_ms = pricing.Seconds(incr.ops) * 1e3 / incr.events;
    const double rebuild_ms =
        pricing.Seconds(rebuild.ops) * 1e3 / rebuild.events;
    cost_table.AddRow(
        {kind_names[kind], std::to_string(incr.events),
         Fmt(static_cast<double>(incr.ops.total()) / incr.events, 0),
         Fmt(static_cast<double>(rebuild.ops.total()) / rebuild.events, 0),
         Fmt(incr_ms, 3), Fmt(rebuild_ms, 3),
         Fmt(rebuild_ms / incr_ms, 2) + "x"});
  }
  const double total_incr_ms = pricing.Seconds(mode_total[0]) * 1e3;
  const double total_rebuild_ms = pricing.Seconds(mode_total[1]) * 1e3;
  cost_table.AddRow({"all", std::to_string(history.size()),
                     Fmt(static_cast<double>(mode_total[0].total()) /
                             history.size(), 0),
                     Fmt(static_cast<double>(mode_total[1].total()) /
                             history.size(), 0),
                     Fmt(total_incr_ms / history.size(), 3),
                     Fmt(total_rebuild_ms / history.size(), 3),
                     Fmt(total_rebuild_ms / total_incr_ms, 2) + "x"});
  cost_table.Print();

  // -- sweep 2: availability while churning (and crashing) ---------------
  const int scheduled_events = options.churn_events > 0
                                   ? options.churn_events
                                   : queries;  // one event per query slot
  std::printf("\n-- availability: %d scheduled events across %d RTPM "
              "queries, reliable transport --\n",
              scheduled_events, queries);
  Table avail_table({"crashed", "maintenance", "applied", "coverage",
                     "partial", "total (s)", "maint ops/ev"});
  for (const int crashes : {0, 2}) {
    for (int mode = 0; mode < 2; ++mode) {
      NetworkConfig config = base;
      config.incremental_maintenance = mode == 0;
      config.churn_events = scheduled_events;
      config.churn_rate = options.churn_rate;
      config.churn_seed = churn_seed;
      config.reliable = true;
      config.max_retries = 2;
      config.fault_seed = options.seed + 3;
      for (int c = 0; c < crashes; ++c) {
        // Spread crashes over the backbone, keeping node 0 alive so the
        // workload's initiators mostly survive.
        config.crashed_sps.push_back(7 + 9 * c);
      }
      SkypeerNetwork network(config);
      network.Preprocess();
      const auto tasks = GenerateWorkload(config.dims, 3, queries,
                                          network.num_super_peers(),
                                          options.seed + 7);
      const AggregateMetrics agg =
          RunWorkload(&network, tasks, Variant::kRTPM);
      const SkypeerNetwork::ChurnStats& stats = network.churn_stats();
      const uint64_t applied =
          stats.joins + stats.removals + stats.replacements + stats.skipped;
      avail_table.AddRow(
          {std::to_string(crashes), mode == 0 ? "incremental" : "rebuild",
           std::to_string(applied) + "/" + std::to_string(scheduled_events),
           Fmt(agg.avg_coverage() * 100, 1) + "%",
           std::to_string(agg.partial_queries) + "/" +
               std::to_string(agg.queries),
           Fmt(agg.avg_total_s(), 3),
           applied > 0
               ? Fmt(static_cast<double>(stats.maintenance_ops.total()) /
                         applied, 0)
               : "-"});
    }
  }
  avail_table.Print();
  return 0;
}
