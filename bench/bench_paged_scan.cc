// Beyond-RAM store scans: threshold scans over an f-sorted store more
// than 10x larger than the buffer pool serving it, paged vs in-memory.
//
// The bench builds one large f-sorted store, spills it through a
// deliberately small pinning buffer pool (`--buffer-pages`, default 16
// frames here — the store is sized to >= 10x the pool by construction)
// and runs unconstrained subspace scans in both store modes, sequential
// and chunked-parallel. It reports wall time per mode and the measured
// paged/in-memory slowdown, and *asserts* the paging contract on every
// row: identical skylines and identical op counts — including the
// logical `page_reads`/`page_bytes` charges, which are pure functions of
// the scan and never of the pool — across modes, repeats and thread
// counts. Physical pool statistics are printed out-of-band under the
// `physical:` prefix and appear in no deterministic output.
//
//   ./bench_paged_scan [--buffer-pages N] [--page-size B] [--threads N]
//                      [--scan-chunk N] [--seed S] [--json PATH] [--full]

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "skypeer/algo/result_list.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/macros.h"
#include "skypeer/common/rng.h"
#include "skypeer/common/thread_pool.h"
#include "skypeer/data/generator.h"
#include "skypeer/storage/buffer_manager.h"
#include "skypeer/storage/page_layout.h"
#include "skypeer/storage/paged_store.h"
#include "skypeer/storage/store_view.h"

namespace skypeer::bench {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct ScanOutcome {
  size_t result_size = 0;
  size_t scanned = 0;
  OpCounts ops;
  double best_wall_s = 0.0;
};

/// Runs `scan` `repeats` times, keeping the best wall time and CHECKing
/// that every repeat reproduces the same result size, scan count and op
/// counts (the determinism half of the paging contract).
template <typename Scan>
ScanOutcome Repeat(int repeats, const Scan& scan) {
  ScanOutcome outcome;
  for (int r = 0; r < repeats; ++r) {
    ThresholdScanStats stats;
    const auto start = std::chrono::steady_clock::now();
    const ResultList result = scan(&stats);
    const double wall = SecondsSince(start);
    if (r == 0) {
      outcome.result_size = result.size();
      outcome.scanned = stats.scanned;
      outcome.ops = stats.ops;
      outcome.best_wall_s = wall;
    } else {
      SKYPEER_CHECK(result.size() == outcome.result_size);
      SKYPEER_CHECK(stats.scanned == outcome.scanned);
      SKYPEER_CHECK(stats.ops == outcome.ops);
      outcome.best_wall_s = std::min(outcome.best_wall_s, wall);
    }
  }
  return outcome;
}

int Run(const BenchOptions& options) {
  const int dims = 6;
  const size_t frames = options.buffer_pages > 0 ? options.buffer_pages : 16;
  const PageLayout layout(options.page_size, dims);
  // Size the store to >= 10x the pool by construction (12x, and 40x
  // under --full).
  const size_t multiplier = options.full ? 40 : 12;
  const size_t points = frames * layout.points_per_page() * multiplier;
  const int repeats = options.QueriesOr(3, 5);

  Rng rng(options.seed);
  const ResultList store_list =
      BuildSortedByF(GenerateUniform(dims, points, &rng));
  BufferManager buffer(options.page_size, frames, ThreadPool::Global());
  const PagedStore paged_store = PagedStore::Build(store_list, &buffer);

  const size_t store_pages = paged_store.num_pages();
  const double capacity_ratio =
      static_cast<double>(store_pages) / static_cast<double>(frames);
  std::printf(
      "# points=%zu dims=%d page_size=%zu store_pages=%zu pool_frames=%zu "
      "capacity_ratio=%.1fx repeats=%d threads=%d cost_model=%s\n",
      points, dims, options.page_size, store_pages, frames, capacity_ratio,
      repeats, ThreadPool::Global()->num_threads(),
      CostModelModeName(options.cost_model.mode));
  SKYPEER_CHECK(capacity_ratio >= 10.0);

  const StoreView in_memory(&store_list, options.page_size);
  const StoreView paged(&paged_store);
  const size_t chunk = options.scan_chunk > 0
                           ? options.scan_chunk
                           : 4 * layout.points_per_page();

  const std::vector<Subspace> subspaces = {
      Subspace::FromDims({0, 1}),
      Subspace::FromDims({0, 1, 2, 3}),
      Subspace::FullSpace(dims),
  };

  Table table({"k", "result", "scanned", "page_reads", "mem_ms", "paged_ms",
               "slowdown", "mem_chunk_ms", "paged_chunk_ms",
               "chunk_slowdown"});
  for (const Subspace& u : subspaces) {
    ThresholdScanOptions scan_options;  // Unconstrained full-store scan.

    const ScanOutcome mem = Repeat(repeats, [&](ThresholdScanStats* stats) {
      return SortedSkyline(in_memory, u, scan_options, stats);
    });
    const ScanOutcome pgd = Repeat(repeats, [&](ThresholdScanStats* stats) {
      return SortedSkyline(paged, u, scan_options, stats);
    });
    // The tentpole invariant, sequential form: identical result and
    // identical op counts — page charges included — in both modes.
    SKYPEER_CHECK(pgd.result_size == mem.result_size);
    SKYPEER_CHECK(pgd.scanned == mem.scanned);
    SKYPEER_CHECK(pgd.ops == mem.ops);

    const ScanOutcome mem_chunk =
        Repeat(repeats, [&](ThresholdScanStats* stats) {
          return ParallelSortedSkyline(in_memory, u, chunk, scan_options,
                                       stats);
        });
    const ScanOutcome pgd_chunk =
        Repeat(repeats, [&](ThresholdScanStats* stats) {
          return ParallelSortedSkyline(paged, u, chunk, scan_options, stats);
        });
    // Chunked form: same invariant between the modes (chunked op counts
    // differ from sequential ones by design, not between modes).
    SKYPEER_CHECK(pgd_chunk.result_size == mem_chunk.result_size);
    SKYPEER_CHECK(pgd_chunk.result_size == mem.result_size);
    SKYPEER_CHECK(pgd_chunk.scanned == mem_chunk.scanned);
    SKYPEER_CHECK(pgd_chunk.ops == mem_chunk.ops);

    table.AddRow({std::to_string(u.Count()), std::to_string(mem.result_size),
                  std::to_string(mem.scanned),
                  std::to_string(mem.ops.page_reads), FmtMs(mem.best_wall_s),
                  FmtMs(pgd.best_wall_s),
                  Fmt(pgd.best_wall_s / std::max(1e-9, mem.best_wall_s), 2),
                  FmtMs(mem_chunk.best_wall_s), FmtMs(pgd_chunk.best_wall_s),
                  Fmt(pgd_chunk.best_wall_s /
                          std::max(1e-9, mem_chunk.best_wall_s),
                      2)});
  }
  table.Print();

  // Physical pool behavior — out-of-band observability only; no
  // deterministic output above depends on any of these numbers.
  const BufferManager::Stats stats = buffer.stats();
  std::printf(
      "physical: buffer hits=%" PRIu64 " misses=%" PRIu64
      " evictions=%" PRIu64 " prefetches=%" PRIu64 " prefetch_hits=%" PRIu64
      " pages_written=%" PRIu64 "\n",
      stats.hits, stats.misses, stats.evictions, stats.prefetches_issued,
      stats.prefetch_hits, stats.pages_written);
  return 0;
}

}  // namespace
}  // namespace skypeer::bench

int main(int argc, char** argv) {
  const skypeer::bench::BenchOptions options =
      skypeer::bench::ParseArgs(argc, argv);
  return skypeer::bench::Run(options);
}
