// CI performance gate: a small fixed-seed bench matrix over all six
// variants. Under `--cost-model calibrated` (or unit) every number in the
// emitted `--json` report — op counts, simulated times, volume — is
// bit-reproducible across runs, machines and thread counts, so CI diffs
// the report byte-for-byte against the committed baseline in
// bench/baselines/ and fails on any perf-relevant drift.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(6, 24);

  std::printf("== CI perf gate: all variants, fixed seed ==\n");
  NetworkConfig config;
  config.num_peers = 160;
  config.num_super_peers = 8;
  config.points_per_peer = 60;
  config.dims = 6;
  config.seed = options.seed;
  SkypeerNetwork network = BuildNetwork(config, options);
  network.Preprocess();

  static const Variant kGateVariants[] = {Variant::kNaive, Variant::kFTFM,
                                          Variant::kFTPM,  Variant::kRTFM,
                                          Variant::kRTPM,  Variant::kPipeline};
  Table table({"variant", "comp_ms", "total_ms", "kb", "msgs", "dominance",
               "scan_steps", "merge_pulls"});
  for (Variant variant : kGateVariants) {
    const AggregateMetrics agg =
        RunVariant(&network, /*k=*/3, queries, options.seed + 17, variant);
    table.AddRow({VariantName(variant), FmtMs(agg.avg_comp_s()),
                  FmtMs(agg.avg_total_s()), Fmt(agg.avg_kb()),
                  Fmt(agg.avg_messages(), 1),
                  std::to_string(agg.total_ops.dominance_tests),
                  std::to_string(agg.total_ops.scan_steps),
                  std::to_string(agg.total_ops.merge_pulls)});
  }
  table.Print();
  return 0;
}
