// CI performance gate: a small fixed-seed bench matrix over all six
// variants. Under `--cost-model calibrated` (or unit) every number in the
// emitted `--json` report — op counts, simulated times, volume — is
// bit-reproducible across runs, machines and thread counts, so CI diffs
// the report byte-for-byte against the committed baseline in
// bench/baselines/ and fails on any perf-relevant drift.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(6, 24);

  std::printf("== CI perf gate: all variants, fixed seed ==\n");
  NetworkConfig config;
  config.num_peers = 160;
  config.num_super_peers = 8;
  config.points_per_peer = 60;
  config.dims = 6;
  config.seed = options.seed;
  SkypeerNetwork network = BuildNetwork(config, options);
  network.Preprocess();

  static const Variant kGateVariants[] = {Variant::kNaive, Variant::kFTFM,
                                          Variant::kFTPM,  Variant::kRTFM,
                                          Variant::kRTPM,  Variant::kPipeline};
  Table table({"variant", "comp_ms", "total_ms", "kb", "msgs", "dominance",
               "scan_steps", "merge_pulls"});
  for (Variant variant : kGateVariants) {
    const AggregateMetrics agg =
        RunVariant(&network, /*k=*/3, queries, options.seed + 17, variant);
    table.AddRow({VariantName(variant), FmtMs(agg.avg_comp_s()),
                  FmtMs(agg.avg_total_s()), Fmt(agg.avg_kb()),
                  Fmt(agg.avg_messages(), 1),
                  std::to_string(agg.total_ops.dominance_tests),
                  std::to_string(agg.total_ops.scan_steps),
                  std::to_string(agg.total_ops.merge_pulls)});
  }
  table.Print();

  // Filter axis: the same matrix with a 16-point broadcast filter set, so
  // drift in the sampled-filter path (selection, seeding, volume
  // accounting) trips the gate too. Skylines are identical to the run
  // above; volume and op counts legitimately differ.
  std::printf("\n== CI perf gate: filtered (--filter-set 16) ==\n");
  BenchOptions filtered = options;
  if (filtered.filter_set == 0) {
    filtered.filter_set = 16;
  }
  SkypeerNetwork filtered_network = BuildNetwork(config, filtered);
  filtered_network.Preprocess();
  Table filtered_table({"variant", "comp_ms", "total_ms", "kb", "msgs",
                        "dominance", "scan_steps", "merge_pulls"});
  for (Variant variant : kGateVariants) {
    const AggregateMetrics agg = RunVariant(&filtered_network, /*k=*/3,
                                            queries, options.seed + 17,
                                            variant);
    filtered_table.AddRow({VariantName(variant), FmtMs(agg.avg_comp_s()),
                           FmtMs(agg.avg_total_s()), Fmt(agg.avg_kb()),
                           Fmt(agg.avg_messages(), 1),
                           std::to_string(agg.total_ops.dominance_tests),
                           std::to_string(agg.total_ops.scan_steps),
                           std::to_string(agg.total_ops.merge_pulls)});
  }
  filtered_table.Print();
  return 0;
}
