// Ablation: the wire format. SKYPEER ships only the k queried
// coordinates plus f(p) per result point; a naive format would ship all
// d coordinates. Reports transferred volume under both models across
// data dimensionality (deterministic: CPU accounting disabled).

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(15);

  std::printf(
      "== Ablation: projected (k+1 values) vs full (d values) wire format "
      "==\n");
  Table table({"d", "FTPM proj KB", "FTPM full KB", "saving %"});
  for (int d = 5; d <= 10; ++d) {
    double kb[2] = {0.0, 0.0};
    for (int full = 0; full < 2; ++full) {
      NetworkConfig config;
      config.dims = d;
      config.num_peers = 1000;
      config.num_super_peers = 50;
      config.seed = options.seed;
      config.measure_cpu = false;
      if (full == 1) {
        // Shipping all d coordinates: model it by inflating the
        // per-point cost. PointBytes(k) = (k+1)*coord + id; to charge
        // (d+1)*coord + id for a k-query we scale coord_bytes.
        // Simpler: run the k=3 workload but set coord_bytes so that
        // (k+1)*coord' = (d+1)*coord.
        config.wire.coord_bytes =
            static_cast<size_t>(8.0 * (d + 1) / (3 + 1));
      }
      SkypeerNetwork network = BuildNetwork(config, options);
      network.Preprocess();
      const AggregateMetrics agg = RunVariant(&network, /*k=*/3, queries,
                                              options.seed + d,
                                              Variant::kFTPM);
      kb[full] = agg.avg_kb();
    }
    table.AddRow({std::to_string(d), Fmt(kb[0], 1), Fmt(kb[1], 1),
                  Fmt(100.0 * (1.0 - kb[0] / kb[1]), 1)});
  }
  table.Print();
  return 0;
}
