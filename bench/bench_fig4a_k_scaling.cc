// Figure 4(a): total response time vs. query dimensionality k for all
// variants and the naive baseline. Uniform data, 12000 peers.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(10);

  std::printf("== Figure 4(a): total time (s) vs k, 12000 peers ==\n");
  NetworkConfig config;
  config.num_peers = 12000;
  config.seed = options.seed;
  SkypeerNetwork network = BuildNetwork(config, options);
  network.Preprocess();

  Table table({"k", "naive", "FTFM", "FTPM", "RTFM", "RTPM"});
  for (int k = 2; k <= 4; ++k) {
    std::vector<std::string> row = {std::to_string(k)};
    for (Variant variant : kAllVariants) {
      const AggregateMetrics agg =
          RunVariant(&network, k, queries, options.seed + k, variant);
      row.push_back(Fmt(agg.avg_total_s(), 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
