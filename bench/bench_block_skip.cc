// Zone-map block skipping: threshold scans with and without the
// `block_skip` summary probe, on correlated and anticorrelated d=5 data.
//
// Each row runs the same subspace scan twice — plain and with
// `ThresholdScanOptions::block_skip` — and *asserts* the skipping
// contract: identical skyline, identical scan count and identical final
// threshold; op counts may differ only in the new `summary_tests` /
// `blocks_skipped` charges and in reduced dominance-test / page-read
// charges. Scans run with `use_rtree = false` so window probes are
// charged as dominance tests (the R-tree twin charges node tests
// instead and reports zero here).
//
// Two sections:
//
// The *monolithic* table scans one store per distribution under two
// forms — `window` (unseeded; only points the scan itself accepted can
// reject blocks) and `filtered` (window seeded with a broadcast filter
// set sampled from a disjoint initiator partition's subspace skyline,
// SKYPEER's filter-point regime, filter_set.h). On one homogeneous
// store the rejection band is the tail of the scan prefix, so savings
// are real but modest.
//
// The *partitioned* table is where zone maps earn their keep: the
// correlated dataset is range-partitioned on f across four peers (the
// f-sorted exchange format makes f-ranges the natural partition), the
// lowest-f partition acts as initiator and broadcasts its filter set,
// and each higher partition scans its own store under those seeds —
// SKYPEER's remote-peer configuration. A higher partition's blocks are
// near-uniformly rejected by the filter before a single point is read,
// its local threshold never tightens (rejected points have no side
// effects), and runs of wholesale-skipped blocks leave whole pages
// unread. The bench CHECKs the headline claims here: >= 20%
// dominance-test reduction and strictly fewer logical page reads
// across the remote partitions in total.
//
// A final paged section re-runs the most-dominated partition's scan
// through a small pinning buffer pool and asserts op counts — skip
// charges included — are bit-identical to the in-memory run.
//
//   ./bench_block_skip [--buffer-pages N] [--page-size B] [--seed S]
//                      [--json PATH] [--full]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "skypeer/algo/filter_set.h"
#include "skypeer/algo/result_list.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/macros.h"
#include "skypeer/common/rng.h"
#include "skypeer/common/thread_pool.h"
#include "skypeer/data/generator.h"
#include "skypeer/storage/buffer_manager.h"
#include "skypeer/storage/page_layout.h"
#include "skypeer/storage/paged_store.h"
#include "skypeer/storage/store_summary.h"
#include "skypeer/storage/store_view.h"

namespace skypeer::bench {
namespace {

struct SkipOutcome {
  ResultList result;
  ThresholdScanStats stats;
};

SkipOutcome Scan(const StoreView& input, Subspace u, const ResultList* filter,
                 bool block_skip) {
  ThresholdScanOptions options;
  options.use_rtree = false;  // Charge window probes as dominance tests.
  options.filter = filter;
  options.block_skip = block_skip;
  ThresholdScanStats stats;
  ResultList result = SortedSkyline(input, u, options, &stats);
  return {std::move(result), stats};
}

/// Asserts the skipping contract between a plain scan and its
/// block-skip twin: identical skyline, scan count and final threshold.
void CheckIdentical(const SkipOutcome& plain, const SkipOutcome& skip) {
  SKYPEER_CHECK(skip.result.size() == plain.result.size());
  for (size_t i = 0; i < plain.result.size(); ++i) {
    SKYPEER_CHECK(skip.result.points.id(i) == plain.result.points.id(i));
  }
  SKYPEER_CHECK(skip.stats.scanned == plain.stats.scanned);
  SKYPEER_CHECK(skip.stats.final_threshold == plain.stats.final_threshold);
  // Skipping only ever removes per-point work: it must never add
  // dominance tests or page reads, and a plain scan never charges the
  // summary counters.
  SKYPEER_CHECK(skip.stats.ops.dominance_tests <= plain.stats.ops.dominance_tests);
  SKYPEER_CHECK(skip.stats.ops.page_reads <= plain.stats.ops.page_reads);
  SKYPEER_CHECK(plain.stats.ops.summary_tests == 0);
  SKYPEER_CHECK(plain.stats.ops.blocks_skipped == 0);
}

double ReductionPct(uint64_t before, uint64_t after) {
  if (before == 0) return 0.0;
  return 100.0 * (1.0 - static_cast<double>(after) / static_cast<double>(before));
}

int Run(const BenchOptions& options) {
  const int dims = 5;
  const size_t points = options.full ? 200000 : 50000;
  const PageLayout layout(options.page_size, dims);

  std::printf("# points=%zu dims=%d page_size=%zu cost_model=%s\n", points,
              dims, options.page_size,
              CostModelModeName(options.cost_model.mode));

  // Each distribution contributes a scanned store plus a disjoint
  // "initiator" partition of the same distribution; the initiator's
  // subspace skyline sources the broadcast filter set, exactly as a
  // query-originating peer's local scan would (filter_set.h).
  struct Distro {
    const char* name;
    ResultList sorted;
    ResultList initiator;
  };
  Rng rng(options.seed);
  std::vector<Distro> distros;
  distros.push_back({"corr",
                     BuildSortedByF(GenerateCorrelated(dims, points, &rng)),
                     BuildSortedByF(GenerateCorrelated(dims, points / 4, &rng))});
  distros.push_back(
      {"anti", BuildSortedByF(GenerateAnticorrelated(dims, points, &rng)),
       BuildSortedByF(GenerateAnticorrelated(dims, points / 4, &rng))});

  const std::vector<Subspace> subspaces = {
      Subspace::FromDims({0, 1}),
      Subspace::FromDims({0, 1, 2, 3}),
      Subspace::FullSpace(dims),
  };

  Table table({"data", "k", "form", "result", "scanned", "dom_plain",
               "dom_skip", "dom_red%", "pages_plain", "pages_skip",
               "blocks_skipped"});

  for (const Distro& distro : distros) {
    const StoreSummary summary = StoreSummary::Build(distro.sorted, layout);
    const StoreView plain_view(&distro.sorted, options.page_size);
    const StoreView skip_view(&distro.sorted, options.page_size, &summary);

    for (const Subspace& u : subspaces) {
      // Broadcast filter set, sampled from the initiator partition's
      // subspace skyline (the strongest pruners an originating peer can
      // legitimately ship — see SelectFilterSet).
      const ResultList initiator_skyline =
          SortedSkyline(distro.initiator, u);
      const ResultList filter =
          SelectFilterSet(initiator_skyline, u, 16, nullptr);
      struct Form {
        const char* name;
        const ResultList* filter;
      };
      const std::vector<Form> forms = {
          {"window", nullptr},    // Pure window-driven skipping.
          {"filtered", &filter},  // SKYPEER broadcast-filter regime.
      };
      for (const Form& form : forms) {
        const SkipOutcome plain = Scan(plain_view, u, form.filter, false);
        const SkipOutcome skip = Scan(skip_view, u, form.filter, true);
        CheckIdentical(plain, skip);

        const double dom_red = ReductionPct(plain.stats.ops.dominance_tests,
                                            skip.stats.ops.dominance_tests);
        table.AddRow({distro.name, std::to_string(u.Count()), form.name,
                      std::to_string(plain.result.size()),
                      std::to_string(plain.stats.scanned),
                      std::to_string(plain.stats.ops.dominance_tests),
                      std::to_string(skip.stats.ops.dominance_tests),
                      Fmt(dom_red, 1),
                      std::to_string(plain.stats.ops.page_reads),
                      std::to_string(skip.stats.ops.page_reads),
                      std::to_string(skip.stats.ops.blocks_skipped)});
      }
    }
  }
  table.Print();

  // Partitioned section: the correlated dataset range-partitioned on f
  // across four peers. Partition 0 (lowest f) is the initiator; its
  // full-space skyline sources the broadcast filter set, and each
  // higher partition scans its own store under those seeds. Filter
  // points drawn from the strongest f-range dominate the min-vector of
  // nearly every remote block, so remote scans reject blocks wholesale
  // and never tighten their local threshold — the zone-map headline
  // regime.
  const ResultList& corr = distros[0].sorted;
  const Subspace full = Subspace::FullSpace(dims);
  const int parts = 4;
  const size_t part_size = corr.size() / parts;
  std::vector<ResultList> partitions;
  for (int p = 0; p < parts; ++p) {
    ResultList part(dims);
    const size_t begin = static_cast<size_t>(p) * part_size;
    const size_t end = p + 1 == parts ? corr.size() : begin + part_size;
    for (size_t i = begin; i < end; ++i) {
      part.points.AppendFrom(corr.points, i);
      part.f.push_back(corr.f[i]);
    }
    partitions.push_back(std::move(part));
  }
  const ResultList part_filter = SelectFilterSet(
      SortedSkyline(partitions[0], full), full, 16, nullptr);

  Table part_table({"peer", "points", "scanned", "dom_plain", "dom_skip",
                    "dom_red%", "pages_plain", "pages_skip",
                    "blocks_skipped"});
  uint64_t total_dom_plain = 0, total_dom_skip = 0;
  uint64_t total_pages_plain = 0, total_pages_skip = 0;
  std::vector<StoreSummary> part_summaries;
  part_summaries.reserve(parts);
  for (int p = 0; p < parts; ++p) {
    part_summaries.push_back(StoreSummary::Build(partitions[p], layout));
  }
  for (int p = 1; p < parts; ++p) {
    const StoreView plain_view(&partitions[p], options.page_size);
    const StoreView skip_view(&partitions[p], options.page_size,
                              &part_summaries[p]);
    const SkipOutcome plain = Scan(plain_view, full, &part_filter, false);
    const SkipOutcome skip = Scan(skip_view, full, &part_filter, true);
    CheckIdentical(plain, skip);
    total_dom_plain += plain.stats.ops.dominance_tests;
    total_dom_skip += skip.stats.ops.dominance_tests;
    total_pages_plain += plain.stats.ops.page_reads;
    total_pages_skip += skip.stats.ops.page_reads;
    part_table.AddRow(
        {std::to_string(p), std::to_string(partitions[p].size()),
         std::to_string(plain.stats.scanned),
         std::to_string(plain.stats.ops.dominance_tests),
         std::to_string(skip.stats.ops.dominance_tests),
         Fmt(ReductionPct(plain.stats.ops.dominance_tests,
                          skip.stats.ops.dominance_tests),
             1),
         std::to_string(plain.stats.ops.page_reads),
         std::to_string(skip.stats.ops.page_reads),
         std::to_string(skip.stats.ops.blocks_skipped)});
  }
  const double total_dom_red = ReductionPct(total_dom_plain, total_dom_skip);
  part_table.AddRow({"total", std::to_string(corr.size() - partitions[0].size()),
                     "-", std::to_string(total_dom_plain),
                     std::to_string(total_dom_skip), Fmt(total_dom_red, 1),
                     std::to_string(total_pages_plain),
                     std::to_string(total_pages_skip), "-"});
  part_table.Print();
  // Headline acceptance: across the remote partitions, skipping removes
  // at least 20% of the dominance tests and leaves whole pages unread.
  SKYPEER_CHECK(total_dom_red >= 20.0);
  SKYPEER_CHECK(total_pages_skip < total_pages_plain);

  // Paged section: the last (most-dominated) partition's filter-seeded
  // scan through a pool an order of magnitude smaller than the store.
  // Logical op counts — skip charges included — must be bit-identical
  // to the in-memory block-skip run; pages whose blocks all skip are
  // never fetched, so the physical miss count drops too (printed
  // out-of-band, `physical:` lines are in no deterministic output).
  const ResultList& remote = partitions[parts - 1];
  const size_t frames =
      options.buffer_pages > 0 ? options.buffer_pages : 8;
  BufferManager buffer(options.page_size, frames, ThreadPool::Global());
  const PagedStore paged_store = PagedStore::Build(remote, &buffer);
  const StoreView paged(&paged_store);
  const StoreView mem(&remote, options.page_size,
                      &part_summaries[parts - 1]);

  const SkipOutcome mem_skip = Scan(mem, full, &part_filter, true);
  const SkipOutcome paged_plain = Scan(paged, full, &part_filter, false);
  const SkipOutcome paged_skip = Scan(paged, full, &part_filter, true);
  CheckIdentical(paged_plain, paged_skip);
  SKYPEER_CHECK(paged_skip.result.size() == mem_skip.result.size());
  SKYPEER_CHECK(paged_skip.stats.scanned == mem_skip.stats.scanned);
  SKYPEER_CHECK(paged_skip.stats.ops == mem_skip.stats.ops);
  SKYPEER_CHECK(paged_skip.stats.ops.page_reads < paged_plain.stats.ops.page_reads);
  std::printf(
      "paged: frames=%zu store_pages=%zu page_reads plain=%llu skip=%llu "
      "(-%.1f%%) blocks_skipped=%llu\n",
      frames, paged_store.num_pages(),
      static_cast<unsigned long long>(paged_plain.stats.ops.page_reads),
      static_cast<unsigned long long>(paged_skip.stats.ops.page_reads),
      ReductionPct(paged_plain.stats.ops.page_reads,
                   paged_skip.stats.ops.page_reads),
      static_cast<unsigned long long>(paged_skip.stats.ops.blocks_skipped));

  const BufferManager::Stats stats = buffer.stats();
  std::printf("physical: buffer hits=%llu misses=%llu evictions=%llu\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.evictions));
  return 0;
}

}  // namespace
}  // namespace skypeer::bench

int main(int argc, char** argv) {
  const skypeer::bench::BenchOptions options =
      skypeer::bench::ParseArgs(argc, argv);
  return skypeer::bench::Run(options);
}
