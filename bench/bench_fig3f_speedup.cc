// Figure 3(f): SKYPEER's relative performance to the naive baseline
// (naive total time / variant total time) for network sizes 4000..12000
// peers. Uniform data, k = 3. The paper reports FTPM 17x faster than
// naive at 12000 peers.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(10);

  std::printf(
      "== Figure 3(f): speedup over naive (total time) vs N_p, k=3 ==\n");
  Table table({"N_p", "FTFM", "FTPM", "RTFM", "RTPM"});
  for (int num_peers : {4000, 8000, 12000}) {
    NetworkConfig config;
    config.num_peers = num_peers;
    config.seed = options.seed;
    SkypeerNetwork network = BuildNetwork(config, options);
    network.Preprocess();
    const AggregateMetrics naive = RunVariant(
        &network, /*k=*/3, queries, options.seed + num_peers, Variant::kNaive);
    std::vector<std::string> row = {std::to_string(num_peers)};
    for (Variant variant :
         {Variant::kFTFM, Variant::kFTPM, Variant::kRTFM, Variant::kRTPM}) {
      const AggregateMetrics agg = RunVariant(
          &network, /*k=*/3, queries, options.seed + num_peers, variant);
      row.push_back(Fmt(naive.avg_total_s() / agg.avg_total_s(), 2) + "x");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
