// Ablation: the per-subspace result cache at super-peers. A repeated
// workload (few distinct subspaces, many queries) is answered by
// filtering cached local skylines by the incoming threshold instead of
// rescanning the store. Reports computational time with and without the
// cache.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(40);

  std::printf("== Ablation: per-subspace result cache at super-peers ==\n");
  Table table({"variant", "no cache comp (ms)", "cache comp (ms)", "speedup"});

  // A workload with only C(4,3)=4 distinct subspaces over dims {0..3} so
  // repetitions are guaranteed.
  for (Variant variant : {Variant::kFTFM, Variant::kFTPM, Variant::kRTPM}) {
    double comp[2] = {0.0, 0.0};
    for (int cached = 0; cached < 2; ++cached) {
      NetworkConfig config;
      config.num_peers = 2000;
      config.num_super_peers = 100;
      config.dims = 4;
      config.seed = options.seed;
      config.scan_chunk_size = options.scan_chunk;
      config.enable_cache = cached == 1;
      SkypeerNetwork network(config);
      network.Preprocess();
      const auto tasks = GenerateWorkload(4, 3, queries,
                                          network.num_super_peers(),
                                          options.seed + 5);
      const AggregateMetrics agg = RunWorkload(&network, tasks, variant);
      comp[cached] = agg.avg_comp_s();
    }
    table.AddRow({VariantName(variant), FmtMs(comp[0]), FmtMs(comp[1]),
                  Fmt(comp[0] / comp[1], 2) + "x"});
  }
  table.Print();
  return 0;
}
