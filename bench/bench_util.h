#ifndef SKYPEER_BENCH_BENCH_UTIL_H_
#define SKYPEER_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "skypeer/common/thread_pool.h"
#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"

namespace skypeer::bench {

/// Command-line options shared by all figure benches.
///
///   --queries N    queries per data point (default: figure-specific)
///   --seed S       master seed (default 1)
///   --threads N    worker threads (default hardware_concurrency;
///                  1 = sequential); simulated metrics are unaffected
///   --scan-chunk N chunk size of the chunked parallel threshold scan at
///                  super-peers (default 0 = sequential scan); results
///                  are identical either way
///   --speculative-rt stage RT*M/pipeline scans concurrently under the
///                  initiator's fixed threshold and reconcile on arrival
///                  of the refined value; results are identical
///   --full         paper-scale parameters (more queries, larger sweeps)
struct BenchOptions {
  int queries = -1;  // -1: use the bench's default.
  uint64_t seed = 1;
  int threads = 0;  // 0: hardware_concurrency.
  size_t scan_chunk = 0;  // 0: sequential threshold scans.
  bool speculative_rt = false;
  bool full = false;

  int QueriesOr(int fallback, int full_value = 100) const {
    if (queries > 0) {
      return queries;
    }
    return full ? full_value : fallback;
  }
};

inline BenchOptions ParseArgs(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      options.full = true;
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      options.queries = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
      if (options.threads < 0) {
        std::fprintf(stderr, "--threads must be >= 0\n");
        std::exit(1);
      }
    } else if (std::strcmp(argv[i], "--scan-chunk") == 0 && i + 1 < argc) {
      options.scan_chunk = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--speculative-rt") == 0) {
      options.speculative_rt = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--queries N] [--seed S] [--threads N] "
          "[--scan-chunk N] [--speculative-rt] [--full]\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      std::exit(1);
    }
  }
  ThreadPool::SetGlobalConcurrency(options.threads);
  return options;
}

/// Fixed-width table printer for paper-style series.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) {
          widths[c] = std::max(widths[c], row[c].size());
        }
      }
    }
    PrintRow(columns_, widths);
    std::string rule;
    for (size_t c = 0; c < columns_.size(); ++c) {
      rule += std::string(widths[c], '-');
      if (c + 1 < columns_.size()) {
        rule += "-+-";
      }
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) {
      PrintRow(row, widths);
    }
  }

 private:
  static void PrintRow(const std::vector<std::string>& cells,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      cell.resize(std::max(cell.size(), widths[c]), ' ');
      line += cell;
      if (c + 1 < widths.size()) {
        line += " | ";
      }
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double value, int precision = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

inline std::string FmtMs(double seconds) { return Fmt(seconds * 1e3, 3); }

/// Builds + preprocesses a network, echoing the configuration. Applies
/// the harness options that map onto the network config (`--scan-chunk`,
/// `--speculative-rt`).
inline SkypeerNetwork BuildNetwork(NetworkConfig config,
                                   const BenchOptions& options) {
  config.scan_chunk_size = options.scan_chunk;
  config.speculative_rt = options.speculative_rt;
  std::printf(
      "# N_p=%d N_sp=%d points/peer=%d d=%d DEG_sp=%.0f dist=%s seed=%llu "
      "scan_chunk=%zu\n",
      config.num_peers,
      config.num_super_peers > 0 ? config.num_super_peers
                                 : DefaultNumSuperPeers(config.num_peers),
      config.points_per_peer, config.dims, config.degree_sp,
      DistributionName(config.distribution),
      static_cast<unsigned long long>(config.seed), config.scan_chunk_size);
  return SkypeerNetwork(config);
}

/// Runs `queries` workload queries of dimensionality `k` under `variant`.
inline AggregateMetrics RunVariant(SkypeerNetwork* network, int k,
                                   int queries, uint64_t seed,
                                   Variant variant) {
  const auto tasks = GenerateWorkload(network->dims(), k, queries,
                                      network->num_super_peers(), seed);
  return RunWorkload(network, tasks, variant);
}

}  // namespace skypeer::bench

#endif  // SKYPEER_BENCH_BENCH_UTIL_H_
