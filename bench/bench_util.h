#ifndef SKYPEER_BENCH_BENCH_UTIL_H_
#define SKYPEER_BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "skypeer/common/parse.h"
#include "skypeer/common/thread_pool.h"
#include "skypeer/engine/cost_model.h"
#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"

namespace skypeer::bench {

/// Command-line options shared by all figure benches.
///
///   --queries N    queries per data point (default: figure-specific)
///   --seed S       master seed (default 1)
///   --threads N    worker threads (default hardware_concurrency;
///                  1 = sequential); simulated metrics are unaffected
///   --scan-chunk N chunk size of the chunked parallel threshold scan at
///                  super-peers (default 0 = sequential scan); results
///                  are identical either way
///   --speculative-rt stage RT*M/pipeline scans concurrently under the
///                  initiator's fixed threshold and reconcile on arrival
///                  of the refined value; results are identical
///   --filter-set N broadcast at most N sampled filter points from the
///                  initiator's local skyline with every query (default 0
///                  = no filter); skylines are identical either way
///   --block-skip   consult per-block zone-map summaries during threshold
///                  scans (default off); results and all metrics except
///                  the new skip counters are identical either way
///   --page-size B  store page size in bytes (power of two in
///                  [4096, 1048576], default 4096); fixes the logical
///                  page-charging geometry in both store modes
///   --buffer-pages N beyond-RAM stores: spill super-peer stores to disk
///                  pages behind a pinning buffer manager of N frames
///                  (N >= 2; default 0 = in-memory); all metrics are
///                  identical either way
///   --cache-cap N  bound the per-subspace trace cache to N entries with
///                  LRU eviction (default 0 = unbounded)
///   --churn-events N schedule N seeded membership changes (join/leave/
///                  replace) spread over the run's queries (default 0 =
///                  no churn); implies dynamic membership
///   --churn-rate R mean in-query arrival time, simulated seconds, of a
///                  scheduled churn event's maintenance charge
///                  (default 0.05)
///   --churn-seed S dedicated churn stream (default 0 = derive from
///                  --seed)
///   --rebuild-maintenance rebuild stores from retained peer lists on
///                  every membership change instead of incremental
///                  maintenance (the cost baseline)
///   --cost-model M CPU charging: measured (host time, default),
///                  calibrated or unit (deterministic op-count seconds)
///   --json PATH    additionally emit the run as a BENCH_*.json report
///                  (series tables, per-variant metrics and op counts)
///   --full         paper-scale parameters (more queries, larger sweeps)
struct BenchOptions {
  int queries = -1;  // -1: use the bench's default.
  uint64_t seed = 1;
  int threads = 0;  // 0: hardware_concurrency.
  size_t scan_chunk = 0;  // 0: sequential threshold scans.
  size_t filter_set = 0;  // 0: no broadcast filter set.
  size_t page_size = kDefaultPageSize;
  size_t buffer_pages = 0;  // 0: in-memory stores.
  size_t cache_cap = 0;     // 0: unbounded trace cache.
  int churn_events = 0;     // 0: no scheduled churn.
  double churn_rate = 0.05;
  uint64_t churn_seed = 0;  // 0: derive from seed.
  bool rebuild_maintenance = false;  // Full rebuilds instead of incremental.
  bool block_skip = false;  // Zone-map block skipping in threshold scans.
  bool speculative_rt = false;
  bool full = false;
  CostModel cost_model;
  std::string json_path;  // Empty: no JSON report.

  int QueriesOr(int fallback, int full_value = 100) const {
    if (queries > 0) {
      return queries;
    }
    return full ? full_value : fallback;
  }
};

// Strict numeric flag parsing lives in skypeer/common/parse.h
// (ParseIntFlag / ParseU64Flag / ParseDoubleFlag), shared with the CLI.

inline CostModel CostModelForMode(CostModelMode mode) {
  switch (mode) {
    case CostModelMode::kMeasured:
      return CostModel::Measured();
    case CostModelMode::kCalibrated:
      return CostModel::Calibrated();
    case CostModelMode::kUnit:
      return CostModel::Unit();
  }
  return CostModel::Measured();
}

// --- JSON report -----------------------------------------------------------

/// Accumulates everything a bench prints into a machine-readable
/// `BENCH_<name>.json`. Filled as a side effect of `Table::Print` and
/// `RunVariant`, written at process exit when `--json` was given. Under
/// `--cost-model calibrated|unit` every emitted number is deterministic,
/// which is what lets CI exact-diff the file against a committed baseline.
struct BenchReport {
  std::string name;       // Basename of argv[0].
  std::string path;       // --json destination; empty disables emission.
  std::string options_json;
  std::vector<std::string> run_objects;    // Per-RunVariant JSON objects.
  std::vector<std::string> table_objects;  // Per-Table JSON objects.
};

inline BenchReport& GlobalBenchReport() {
  static BenchReport report;
  return report;
}

inline std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char ch : text) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", ch);
      out += buffer;
    } else {
      out += ch;
    }
  }
  return out;
}

/// Round-trip double formatting: bit-identical doubles yield identical
/// text, so calibrated-mode reports diff clean.
inline std::string JsonNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

inline std::string JsonOpCounts(const OpCounts& ops) {
  char buffer[640];
  std::snprintf(buffer, sizeof(buffer),
                "{\"dominance_tests\":%llu,\"rtree_node_visits\":%llu,"
                "\"scan_steps\":%llu,\"merge_pulls\":%llu,"
                "\"sort_steps\":%llu,\"bytes_serialized\":%llu,"
                "\"page_reads\":%llu,\"page_bytes\":%llu,"
                "\"summary_tests\":%llu,\"blocks_skipped\":%llu}",
                static_cast<unsigned long long>(ops.dominance_tests),
                static_cast<unsigned long long>(ops.rtree_node_visits),
                static_cast<unsigned long long>(ops.scan_steps),
                static_cast<unsigned long long>(ops.merge_pulls),
                static_cast<unsigned long long>(ops.sort_steps),
                static_cast<unsigned long long>(ops.bytes_serialized),
                static_cast<unsigned long long>(ops.page_reads),
                static_cast<unsigned long long>(ops.page_bytes),
                static_cast<unsigned long long>(ops.summary_tests),
                static_cast<unsigned long long>(ops.blocks_skipped));
  return buffer;
}

inline void WriteBenchReport() {
  const BenchReport& report = GlobalBenchReport();
  if (report.path.empty()) {
    return;
  }
  std::FILE* file = std::fopen(report.path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", report.path.c_str());
    return;
  }
  std::fprintf(file, "{\n  \"bench\": \"%s\",\n  \"options\": %s,\n",
               JsonEscape(report.name).c_str(), report.options_json.c_str());
  std::fprintf(file, "  \"runs\": [\n");
  for (size_t i = 0; i < report.run_objects.size(); ++i) {
    std::fprintf(file, "    %s%s\n", report.run_objects[i].c_str(),
                 i + 1 < report.run_objects.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n  \"tables\": [\n");
  for (size_t i = 0; i < report.table_objects.size(); ++i) {
    std::fprintf(file, "    %s%s\n", report.table_objects[i].c_str(),
                 i + 1 < report.table_objects.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
}

inline BenchOptions ParseArgs(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      options.full = true;
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      options.queries =
          static_cast<int>(ParseIntFlag("--queries", argv[++i], 1, 1'000'000));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = ParseU64Flag("--seed", argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads =
          static_cast<int>(ParseIntFlag("--threads", argv[++i], 0, 4096));
    } else if (std::strcmp(argv[i], "--scan-chunk") == 0 && i + 1 < argc) {
      options.scan_chunk =
          static_cast<size_t>(ParseU64Flag("--scan-chunk", argv[++i]));
    } else if (std::strcmp(argv[i], "--filter-set") == 0 && i + 1 < argc) {
      options.filter_set =
          static_cast<size_t>(ParseU64Flag("--filter-set", argv[++i]));
    } else if (std::strcmp(argv[i], "--page-size") == 0 && i + 1 < argc) {
      options.page_size =
          static_cast<size_t>(ParseU64Flag("--page-size", argv[++i]));
      if (options.page_size < kMinPageSize ||
          options.page_size > kMaxPageSize ||
          (options.page_size & (options.page_size - 1)) != 0) {
        std::fprintf(stderr,
                     "--page-size: %zu is not a power of two in "
                     "[4096, 1048576]\n",
                     options.page_size);
        std::exit(1);
      }
    } else if (std::strcmp(argv[i], "--buffer-pages") == 0 && i + 1 < argc) {
      options.buffer_pages =
          static_cast<size_t>(ParseU64Flag("--buffer-pages", argv[++i]));
      if (options.buffer_pages == 1) {
        std::fprintf(stderr,
                     "--buffer-pages: must be 0 (in-memory) or >= 2\n");
        std::exit(1);
      }
    } else if (std::strcmp(argv[i], "--cache-cap") == 0 && i + 1 < argc) {
      options.cache_cap =
          static_cast<size_t>(ParseU64Flag("--cache-cap", argv[++i]));
    } else if (std::strcmp(argv[i], "--churn-events") == 0 && i + 1 < argc) {
      options.churn_events = static_cast<int>(
          ParseIntFlag("--churn-events", argv[++i], 0, 1'000'000));
    } else if (std::strcmp(argv[i], "--churn-rate") == 0 && i + 1 < argc) {
      options.churn_rate = ParseDoubleFlag("--churn-rate", argv[++i], 0.0, 1e9);
      if (options.churn_rate <= 0.0) {
        std::fprintf(stderr, "--churn-rate: must be > 0\n");
        std::exit(1);
      }
    } else if (std::strcmp(argv[i], "--churn-seed") == 0 && i + 1 < argc) {
      options.churn_seed = ParseU64Flag("--churn-seed", argv[++i]);
    } else if (std::strcmp(argv[i], "--rebuild-maintenance") == 0) {
      options.rebuild_maintenance = true;
    } else if (std::strcmp(argv[i], "--block-skip") == 0) {
      options.block_skip = true;
    } else if (std::strcmp(argv[i], "--speculative-rt") == 0) {
      options.speculative_rt = true;
    } else if (std::strcmp(argv[i], "--cost-model") == 0 && i + 1 < argc) {
      CostModelMode mode;
      if (!ParseCostModelMode(argv[++i], &mode)) {
        std::fprintf(stderr,
                     "--cost-model: '%s' is not measured|calibrated|unit\n",
                     argv[i]);
        std::exit(1);
      }
      options.cost_model = CostModelForMode(mode);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      options.json_path = argv[++i];
      if (options.json_path.empty()) {
        std::fprintf(stderr, "--json: path must be non-empty\n");
        std::exit(1);
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--queries N] [--seed S] [--threads N] "
          "[--scan-chunk N] [--filter-set N] [--page-size B] "
          "[--buffer-pages N] [--cache-cap N] [--churn-events N] "
          "[--churn-rate R] [--churn-seed S] [--rebuild-maintenance] "
          "[--block-skip] [--speculative-rt] "
          "[--cost-model measured|calibrated|unit] [--json PATH] [--full]\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      std::exit(1);
    }
  }
  ThreadPool::SetGlobalConcurrency(options.threads);

  BenchReport& report = GlobalBenchReport();
  const char* slash = std::strrchr(argv[0], '/');
  report.name = slash != nullptr ? slash + 1 : argv[0];
  report.path = options.json_path;
  char buffer[832];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"queries\": %d, \"seed\": %llu, \"threads\": %d, "
      "\"scan_chunk\": %llu, \"filter_set\": %llu, \"page_size\": %llu, "
      "\"buffer_pages\": %llu, \"cache_cap\": %llu, \"churn_events\": %d, "
      "\"churn_rate\": %s, \"churn_seed\": %llu, "
      "\"rebuild_maintenance\": %s, \"block_skip\": %s, "
      "\"speculative_rt\": %s, \"full\": %s, \"cost_model\": \"%s\"}",
      options.queries, static_cast<unsigned long long>(options.seed),
      options.threads, static_cast<unsigned long long>(options.scan_chunk),
      static_cast<unsigned long long>(options.filter_set),
      static_cast<unsigned long long>(options.page_size),
      static_cast<unsigned long long>(options.buffer_pages),
      static_cast<unsigned long long>(options.cache_cap),
      options.churn_events, JsonNumber(options.churn_rate).c_str(),
      static_cast<unsigned long long>(options.churn_seed),
      options.rebuild_maintenance ? "true" : "false",
      options.block_skip ? "true" : "false",
      options.speculative_rt ? "true" : "false",
      options.full ? "true" : "false", CostModelModeName(options.cost_model.mode));
  report.options_json = buffer;
  if (!report.path.empty()) {
    std::atexit(WriteBenchReport);
  }
  return options;
}

/// Fixed-width table printer for paper-style series. `Print` also records
/// the table into the JSON report (columns + cell strings verbatim).
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) {
          widths[c] = std::max(widths[c], row[c].size());
        }
      }
    }
    PrintRow(columns_, widths);
    std::string rule;
    for (size_t c = 0; c < columns_.size(); ++c) {
      rule += std::string(widths[c], '-');
      if (c + 1 < columns_.size()) {
        rule += "-+-";
      }
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) {
      PrintRow(row, widths);
    }
    Record();
  }

 private:
  static void PrintRow(const std::vector<std::string>& cells,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      cell.resize(std::max(cell.size(), widths[c]), ' ');
      line += cell;
      if (c + 1 < widths.size()) {
        line += " | ";
      }
    }
    std::printf("%s\n", line.c_str());
  }

  void Record() const {
    const auto cells = [](const std::vector<std::string>& row) {
      std::string out = "[";
      for (size_t c = 0; c < row.size(); ++c) {
        out += '"' + JsonEscape(row[c]) + '"';
        if (c + 1 < row.size()) {
          out += ',';
        }
      }
      return out + "]";
    };
    std::string object = "{\"columns\":" + cells(columns_) + ",\"rows\":[";
    for (size_t r = 0; r < rows_.size(); ++r) {
      object += cells(rows_[r]);
      if (r + 1 < rows_.size()) {
        object += ',';
      }
    }
    object += "]}";
    GlobalBenchReport().table_objects.push_back(std::move(object));
  }

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double value, int precision = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

inline std::string FmtMs(double seconds) { return Fmt(seconds * 1e3, 3); }

/// Builds + preprocesses a network, echoing the configuration. Applies
/// the harness options that map onto the network config (`--scan-chunk`,
/// `--speculative-rt`, `--cost-model`).
inline SkypeerNetwork BuildNetwork(NetworkConfig config,
                                   const BenchOptions& options) {
  config.scan_chunk_size = options.scan_chunk;
  config.filter_set_size = options.filter_set;
  config.block_skip = options.block_skip;
  config.speculative_rt = options.speculative_rt;
  config.page_size = options.page_size;
  config.buffer_pages = options.buffer_pages;
  config.cache_max_entries = options.cache_cap;
  config.cost_model = options.cost_model;
  if (options.churn_events > 0) {
    config.churn_events = options.churn_events;
    config.churn_rate = options.churn_rate;
    config.churn_seed = options.churn_seed;
    config.dynamic_membership = true;
    config.incremental_maintenance = !options.rebuild_maintenance;
  }
  std::printf(
      "# N_p=%d N_sp=%d points/peer=%d d=%d DEG_sp=%.0f dist=%s seed=%llu "
      "scan_chunk=%zu filter_set=%zu block_skip=%d page_size=%zu "
      "buffer_pages=%zu cost_model=%s\n",
      config.num_peers,
      config.num_super_peers > 0 ? config.num_super_peers
                                 : DefaultNumSuperPeers(config.num_peers),
      config.points_per_peer, config.dims, config.degree_sp,
      DistributionName(config.distribution),
      static_cast<unsigned long long>(config.seed), config.scan_chunk_size,
      config.filter_set_size, config.block_skip ? 1 : 0, config.page_size,
      config.buffer_pages, CostModelModeName(config.cost_model.mode));
  return SkypeerNetwork(config);
}

/// Runs `queries` workload queries of dimensionality `k` under `variant`,
/// recording the aggregate (time series, volume, op counts) into the JSON
/// report.
inline AggregateMetrics RunVariant(SkypeerNetwork* network, int k,
                                   int queries, uint64_t seed,
                                   Variant variant) {
  const auto tasks = GenerateWorkload(network->dims(), k, queries,
                                      network->num_super_peers(), seed);
  const AggregateMetrics agg = RunWorkload(network, tasks, variant);
  std::string object = "{\"variant\":\"";
  object += VariantName(variant);
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "\",\"k\":%d,\"queries\":%d,\"seed\":%llu,\"dims\":%d,"
                "\"num_super_peers\":%d,",
                k, queries, static_cast<unsigned long long>(seed),
                network->dims(), network->num_super_peers());
  object += buffer;
  object += "\"avg_comp_s\":" + JsonNumber(agg.avg_comp_s());
  object += ",\"avg_total_s\":" + JsonNumber(agg.avg_total_s());
  object += ",\"avg_kb\":" + JsonNumber(agg.avg_kb());
  object += ",\"avg_messages\":" + JsonNumber(agg.avg_messages());
  object += ",\"avg_result\":" + JsonNumber(agg.avg_result());
  object += ",\"avg_scanned\":" + JsonNumber(agg.scanned.mean());
  object += ",\"p50_comp_s\":" + JsonNumber(agg.comp_s.Percentile(50));
  object += ",\"p100_comp_s\":" + JsonNumber(agg.comp_s.Percentile(100));
  object += ",\"ops\":" + JsonOpCounts(agg.total_ops);
  object += "}";
  GlobalBenchReport().run_objects.push_back(std::move(object));
  return agg;
}

}  // namespace skypeer::bench

#endif  // SKYPEER_BENCH_BENCH_UTIL_H_
