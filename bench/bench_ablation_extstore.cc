// Ablation: why the *extended* skyline (§4)? If peers uploaded only
// their regular full-space skylines, subspace queries would silently
// lose results. This bench quantifies the damage: for each query
// dimensionality k it reports how many true skyline points a
// regular-skyline store misses, versus zero for the extended store
// (Observation 4).
//
// The effect requires duplicate attribute values (with continuous data
// ties are measure-zero and ext-skyline == skyline), so the dataset is
// discrete: every coordinate is drawn from an 8-level grid — think
// prices in round numbers, star ratings, noise classes.

#include "bench/bench_util.h"
#include "skypeer/algo/bnl.h"
#include "skypeer/algo/extended_skyline.h"
#include "skypeer/algo/merge.h"
#include "skypeer/algo/sfs.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"
#include "skypeer/data/partition.h"

#include <set>

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(50);
  constexpr int kDims = 8;
  constexpr size_t kPoints = 50000;
  constexpr size_t kPeers = 200;
  constexpr int kGridLevels = 8;

  std::printf(
      "== Ablation: extended-skyline store vs regular-skyline store ==\n");
  std::printf(
      "# %zu discrete points (%d-level grid) over %zu peers, d=%d, "
      "%d queries/k\n",
      kPoints, kGridLevels, kPeers, kDims, queries);

  Rng rng(options.seed);
  PointSet all(kDims);
  all.Reserve(kPoints);
  for (size_t i = 0; i < kPoints; ++i) {
    double row[kDims];
    for (int d = 0; d < kDims; ++d) {
      row[d] = static_cast<double>(rng.UniformInt(0, kGridLevels - 1)) /
               kGridLevels;
    }
    all.Append(row, i);
  }
  const auto partitions = PartitionEvenly(all, kPeers);

  // Build both stores: union of per-peer extended skylines vs union of
  // per-peer regular skylines (merged the same way).
  std::vector<ResultList> ext_lists;
  std::vector<ResultList> sky_lists;
  for (const PointSet& part : partitions) {
    ext_lists.push_back(ExtendedSkyline(part));
    sky_lists.push_back(
        BuildSortedByF(SfsSkyline(part, Subspace::FullSpace(kDims))));
  }
  ThresholdScanOptions ext_merge;
  ext_merge.ext = true;
  const ResultList ext_store =
      MergeSortedSkylines(ext_lists, Subspace::FullSpace(kDims), ext_merge);
  const ResultList sky_store =
      MergeSortedSkylines(sky_lists, Subspace::FullSpace(kDims));

  std::printf("# store sizes: extended=%zu regular=%zu (%.1f%% smaller but "
              "lossy)\n",
              ext_store.size(), sky_store.size(),
              100.0 * (1.0 - static_cast<double>(sky_store.size()) /
                                 ext_store.size()));

  Table table({"k", "avg |SKY_U|", "ext store missing", "sky store missing",
               "queries w/ loss %"});
  for (int k = 1; k <= 4; ++k) {
    Rng workload_rng(options.seed + k);
    double avg_size = 0.0;
    size_t ext_missing = 0;
    size_t sky_missing = 0;
    int lossy_queries = 0;
    for (int q = 0; q < queries; ++q) {
      std::vector<int> dims(kDims);
      for (int i = 0; i < kDims; ++i) {
        dims[i] = i;
      }
      std::shuffle(dims.begin(), dims.end(), workload_rng.engine());
      const Subspace u =
          Subspace::FromDims(std::vector<int>(dims.begin(), dims.begin() + k));

      const PointSet truth = SfsSkyline(all, u);
      avg_size += static_cast<double>(truth.size());
      std::set<PointId> ext_ids;
      for (PointId id : SfsSkyline(ext_store.points, u).Ids()) {
        ext_ids.insert(id);
      }
      std::set<PointId> sky_ids;
      for (PointId id : SfsSkyline(sky_store.points, u).Ids()) {
        sky_ids.insert(id);
      }
      size_t lost = 0;
      for (PointId id : truth.Ids()) {
        ext_missing += ext_ids.count(id) == 0 ? 1 : 0;
        lost += sky_ids.count(id) == 0 ? 1 : 0;
      }
      sky_missing += lost;
      lossy_queries += lost > 0 ? 1 : 0;
    }
    table.AddRow({std::to_string(k), Fmt(avg_size / queries, 1),
                  std::to_string(ext_missing), std::to_string(sky_missing),
                  Fmt(100.0 * lossy_queries / queries, 1)});
  }
  table.Print();
  std::printf("\nThe extended store never misses (Observation 4); the "
              "regular store drops real skyline points on subspace "
              "queries.\n");
  return 0;
}
