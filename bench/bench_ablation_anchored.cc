// Ablation: centralized subspace-skyline computation — the paper's
// origin-anchored threshold scan (Algorithm 1) vs the SUBSKY-style
// cluster-anchored index vs plain BNL. Reports points consumed and wall
// time per query across data distributions.

#include <chrono>

#include "bench/bench_util.h"
#include "skypeer/algo/anchored_skyline.h"
#include "skypeer/algo/bnl.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"

namespace {

using namespace skypeer;

PointSet MakeData(Distribution distribution, int dims, size_t n,
                  uint64_t seed) {
  Rng rng(seed);
  switch (distribution) {
    case Distribution::kUniform:
      return GenerateUniform(dims, n, &rng);
    case Distribution::kClustered: {
      PointSet data(dims);
      for (int c = 0; c < 6; ++c) {
        data.AppendAll(GenerateClustered(RandomCentroid(dims, &rng), n / 6,
                                         kClusterStdDev, &rng, c * n));
      }
      return data;
    }
    case Distribution::kCorrelated:
      return GenerateCorrelated(dims, n, &rng);
    case Distribution::kAnticorrelated:
      return GenerateAnticorrelated(dims, n, &rng);
  }
  return PointSet(dims);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int repeats = options.QueriesOr(10, 50);
  constexpr int kDims = 6;
  constexpr size_t kPoints = 60000;
  const Subspace u = Subspace::FromDims({0, 2, 4});

  std::printf(
      "== Ablation: Algorithm 1 (origin anchor) vs SUBSKY-style cluster "
      "anchors vs BNL ==\n# n=%zu d=%d k=3\n",
      kPoints, kDims);
  Table table({"distribution", "method", "scanned", "time (ms)"});
  for (Distribution distribution :
       {Distribution::kUniform, Distribution::kClustered,
        Distribution::kAnticorrelated}) {
    PointSet data = MakeData(distribution, kDims, kPoints, options.seed);
    ResultList sorted = BuildSortedByF(data);
    AnchoredSkylineIndex::Options anchored_options;
    anchored_options.num_anchors = 16;
    anchored_options.seed = options.seed;
    AnchoredSkylineIndex index(data, anchored_options);

    // BNL baseline.
    {
      const auto start = std::chrono::steady_clock::now();
      size_t result = 0;
      for (int r = 0; r < repeats; ++r) {
        result = BnlSkyline(data, u).size();
      }
      (void)result;
      const double ms = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count() *
                        1e3 / repeats;
      table.AddRow({DistributionName(distribution), "BNL",
                    std::to_string(data.size()), Fmt(ms, 2)});
    }
    // Algorithm 1 (origin anchor).
    {
      ThresholdScanStats stats;
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        SortedSkyline(sorted, u, {}, &stats);
      }
      const double ms = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count() *
                        1e3 / repeats;
      table.AddRow({DistributionName(distribution), "Algorithm 1",
                    std::to_string(stats.scanned), Fmt(ms, 2)});
    }
    // Cluster anchors.
    {
      ThresholdScanStats stats;
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        index.Query(u, &stats);
      }
      const double ms = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count() *
                        1e3 / repeats;
      table.AddRow({DistributionName(distribution), "anchored (16)",
                    std::to_string(stats.scanned), Fmt(ms, 2)});
    }
  }
  table.Print();
  return 0;
}
