// Ablation: backbone topology. The paper runs on GT-ITM random graphs
// (Waxman); Edutella (cited in §2) uses HyperCuP hypercubes. The
// hypercube's logarithmic diameter shortens routing paths, which lowers
// total response time exactly like a higher DEG_sp does in Fig 4(e).

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(15);

  std::printf("== Ablation: Waxman random graph vs HyperCuP backbone ==\n");
  Table table({"topology", "avg degree", "variant", "comp (ms)", "total (s)",
               "volume (KB)"});
  for (BackboneTopology topology :
       {BackboneTopology::kWaxman, BackboneTopology::kHypercube}) {
    NetworkConfig config;
    config.topology = topology;
    config.seed = options.seed;
    SkypeerNetwork network = BuildNetwork(config, options);
    network.Preprocess();
    const double degree = network.overlay().backbone.AverageDegree();
    for (Variant variant :
         {Variant::kNaive, Variant::kFTPM, Variant::kRTPM}) {
      const AggregateMetrics agg = RunVariant(
          &network, /*k=*/3, queries, options.seed + 11, variant);
      table.AddRow({BackboneTopologyName(topology), Fmt(degree, 1),
                    VariantName(variant), FmtMs(agg.avg_comp_s()),
                    Fmt(agg.avg_total_s(), 2), Fmt(agg.avg_kb(), 1)});
    }
  }
  table.Print();
  return 0;
}
