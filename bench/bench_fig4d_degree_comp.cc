// Figure 4(d): computational time vs. super-peer connectivity DEG_sp =
// 4..7. Uniform data, 4000 peers, k = 3. The paper finds computational
// time essentially unaffected by the degree.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(20);

  std::printf("== Figure 4(d): computational time (ms) vs DEG_sp, k=3 ==\n");
  Table table({"DEG_sp", "naive", "FTFM", "FTPM", "RTFM", "RTPM"});
  for (int degree = 4; degree <= 7; ++degree) {
    NetworkConfig config;
    config.degree_sp = degree;
    config.seed = options.seed;
    SkypeerNetwork network = BuildNetwork(config, options);
    network.Preprocess();
    std::vector<std::string> row = {std::to_string(degree)};
    for (Variant variant : kAllVariants) {
      const AggregateMetrics agg = RunVariant(
          &network, /*k=*/3, queries, options.seed + degree, variant);
      row.push_back(FmtMs(agg.avg_comp_s()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
