// Figure 4(c): total response time vs. network size N_p = 20000..80000
// (N_sp = 1% of N_p), all variants vs. naive. Uniform data, k = 3,
// 4 KB/s links. The improvement factor of progressive merging grows with
// the network size.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace skypeer;
  using namespace skypeer::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const int queries = options.QueriesOr(5, /*full_value=*/100);

  std::printf("== Figure 4(c): total time (s) vs N_p, k=3 ==\n");
  Table table({"N_p", "naive", "FTFM", "FTPM", "RTFM", "RTPM"});
  for (int num_peers : {20000, 40000, 80000}) {
    NetworkConfig config;
    config.num_peers = num_peers;
    config.seed = options.seed;
    SkypeerNetwork network = BuildNetwork(config, options);
    network.Preprocess();
    std::vector<std::string> row = {std::to_string(num_peers)};
    for (Variant variant : kAllVariants) {
      const AggregateMetrics agg = RunVariant(
          &network, /*k=*/3, queries, options.seed + num_peers, variant);
      row.push_back(Fmt(agg.avg_total_s(), 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
